// Campaign-level durability: the scheduler's task list, made crash
// safe. A Campaign is a list of tuning tasks multiplexed over the
// shared pool like Scheduler.Run, plus a CRC-framed campaign ledger
// (journal.Ledger — same framing as the per-session journals) that
// records which tasks started, finished or failed, where each task's
// session journal lives, and every adaptive-budget grant. A campaign
// killed at any point — including SIGKILL — resumes mid-grid:
// completed tasks are skipped via their done records (their recorded
// results are returned without constructing a tuner or touching an
// objective), in-flight tasks resume through their session journals,
// and the stitched result is bit-identical to an uninterrupted run.
//
// On top of the ledger sits the adaptive budget pool: evaluations
// unspent by early-stopped or failed sessions are banked, and
// still-running sessions whose tuners exhaust their base budget draw
// from the bank as extended Request.Budget. Every grant is journaled
// before it is applied (write-ahead), so a resumed campaign re-applies
// exactly the grants the original run decided, at the same points in
// each task's trial sequence — grant replay is what keeps extended
// sessions bit-identical across kills. With a serial scheduler
// (sessions=1) the grant sequence is fully deterministic across fresh
// runs as well; under concurrency it depends on completion timing, and
// the ledger is precisely what makes that timing-dependent history
// reproducible on resume.
package schedule

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"repro/internal/conf"
	"repro/internal/journal"
	"repro/internal/tuners"
)

// Task is one tuning session of a durable campaign. New constructs
// the tuner and its private objective — a factory rather than values,
// because a resumed campaign must build fresh instances for the tasks
// it actually replays and must build nothing at all for tasks its
// ledger already settled.
type Task struct {
	// Name identifies the task in the ledger manifest; the task list
	// (names, order, journal paths) must match on resume.
	Name string
	// New builds the task's tuner and objective.
	New func() (tuners.SessionTuner, tuners.Objective)
	// Space is the search space (also used to decode recorded results).
	Space *conf.Space
	// Request is the session request; Journal and Grants are owned by
	// the campaign and must be left nil.
	Request tuners.Request
	// JournalPath, when set, makes the task's session durable; Meta is
	// the session identity its journal is validated against.
	JournalPath string
	Meta        journal.Meta
}

// CampaignOptions configures a durable campaign run.
type CampaignOptions struct {
	// LedgerPath is the campaign ledger file; "" runs the campaign
	// without durability (and without budget reallocation journaling —
	// grants then live only in memory).
	LedgerPath string
	// Sync is the fsync policy for the ledger and all session journals.
	Sync journal.SyncPolicy
	// Reallocate enables the adaptive budget pool. Off, unspent
	// evaluations are only reported (CampaignResult.Unused), exactly
	// like the plain scheduler.
	Reallocate bool
	// GrantChunk caps a single grant (0 = the receiving task's base
	// budget). Chunking keeps one insatiable session from draining the
	// whole bank in one draw.
	GrantChunk int
	// Seed and Config fingerprint the campaign in the ledger manifest;
	// resume validates both.
	Seed   uint64
	Config string
}

// TaskOutcome is one task's stitched outcome.
type TaskOutcome struct {
	// Result is the session result — recorded or freshly run. For a
	// failed task it is the zero Result.
	Result tuners.Result
	// Failed is the panic (or setup-failure) reason, "" on success.
	Failed string
	// Reused is true when the outcome was satisfied from the ledger
	// without constructing the task's tuner or objective.
	Reused bool
}

// CampaignResult is the stitched campaign outcome.
type CampaignResult struct {
	// Tasks holds one outcome per task, in task order.
	Tasks []TaskOutcome
	// Grants is every budget grant applied across the campaign's
	// lifetime (recorded runs included), in grant order.
	Grants []journal.Grant
	// Unused is the number of unspent evaluations left in the budget
	// pool at campaign end: surpluses deposited minus grants drawn.
	Unused int
	// Resumed is true when the ledger carried records from a previous
	// run.
	Resumed bool
	// Recovery reports what ledger recovery found and truncated.
	Recovery journal.RecoveryInfo
}

// Results returns just the task results, in task order (failed tasks
// contribute their zero Result).
func (r *CampaignResult) Results() []tuners.Result {
	out := make([]tuners.Result, len(r.Tasks))
	for i, t := range r.Tasks {
		out[i] = t.Result
	}
	return out
}

// campaign is the run state shared by all task goroutines.
type campaign struct {
	tasks []Task
	opts  CampaignOptions
	led   *journal.Ledger

	mu       sync.Mutex
	out      []TaskOutcome
	settled  []bool  // outcome prefilled from the ledger; do not run
	granted  []int   // extra budget applied per task (all runs)
	replay   [][]int // recorded grants not yet re-applied, per task
	grants   []journal.Grant
	grantSeq int
	bank     int // unspent evaluations available for reallocation
}

// RunCampaign executes tasks as a durable campaign over the
// scheduler's pool and session limit. Each task runs with per-task
// panic containment: a panicking session is recorded as failed in the
// ledger (its pool slots are released by the unwinding evaluation
// defers), and the remaining sessions run to completion. On return
// the pool is asserted idle — a non-zero slot count is a scheduler
// bug and surfaces as an error rather than a silent leak.
func (s *Scheduler) RunCampaign(tasks []Task, opts CampaignOptions) (*CampaignResult, error) {
	c := &campaign{
		tasks:   tasks,
		opts:    opts,
		out:     make([]TaskOutcome, len(tasks)),
		settled: make([]bool, len(tasks)),
		granted: make([]int, len(tasks)),
		replay:  make([][]int, len(tasks)),
	}
	res := &CampaignResult{}
	if opts.LedgerPath != "" {
		meta := journal.LedgerMeta{Seed: opts.Seed, Config: opts.Config}
		for _, t := range tasks {
			meta.Tasks = append(meta.Tasks, t.Name)
			meta.Journals = append(meta.Journals, t.JournalPath)
		}
		led, err := journal.OpenLedger(opts.LedgerPath, meta, opts.Sync)
		if err != nil {
			return nil, err
		}
		defer led.Close()
		c.led = led
		res.Resumed = led.Resumed()
		res.Recovery = led.Recovery()
		if err := c.restore(); err != nil {
			return nil, err
		}
	}

	s.RunTasks(len(tasks), func(i int, pool *Pool) { c.runTask(i, pool) })

	if leaked := s.pool.InUse(); leaked != 0 {
		return nil, fmt.Errorf("schedule: %d evaluation slot(s) still held at campaign teardown (scheduler bug)", leaked)
	}
	res.Tasks = c.out
	res.Grants = append([]journal.Grant(nil), c.grants...)
	res.Unused = c.bank
	return res, nil
}

// restore rebuilds the campaign's resume state from the recovered
// ledger: settled outcomes for done/failed tasks, per-task grant
// replay queues, and the budget bank (deposits minus draws).
func (c *campaign) restore() error {
	for _, g := range c.led.Grants() {
		c.granted[g.Task] += g.Evals
		c.replay[g.Task] = append(c.replay[g.Task], g.Evals)
		c.grants = append(c.grants, g)
		if g.Seq >= c.grantSeq {
			c.grantSeq = g.Seq + 1
		}
		c.bank -= g.Evals
	}
	for i := range c.tasks {
		if d, ok := c.led.TaskDone(i); ok {
			r, err := decodeResult(c.tasks[i].Space, d.Result)
			if err != nil {
				return fmt.Errorf("schedule: task %d (%s): recorded result unreadable: %w", i, c.tasks[i].Name, err)
			}
			c.out[i] = TaskOutcome{Result: r, Reused: true}
			c.settled[i] = true
			c.replay[i] = nil // its grants are already inside the recorded result
			c.bank += d.Surplus
		} else if f, ok := c.led.TaskFailed(i); ok {
			c.out[i] = TaskOutcome{Failed: f.Reason, Reused: true}
			c.settled[i] = true
			c.replay[i] = nil
			c.bank += f.Surplus
		}
	}
	return nil
}

func (c *campaign) runTask(i int, pool *Pool) {
	c.mu.Lock()
	skip := c.settled[i]
	c.mu.Unlock()
	if skip {
		return
	}
	if c.led != nil {
		_ = c.led.AppendStart(i)
	}
	c.out[i] = c.execute(i, pool)
}

// execute runs one task with panic containment. The recover is the
// campaign's crash boundary: a panicking tuner or objective unwinds
// through the pool wrapper's deferred releases (so no slot leaks),
// lands here, is recorded as failed in the ledger with whatever
// budget it left unspent surrendered to the pool, and the campaign
// carries on.
func (c *campaign) execute(i int, pool *Pool) (out TaskOutcome) {
	t := c.tasks[i]
	var jn *journal.Journal
	var ses *tuners.Session
	defer func() {
		if p := recover(); p != nil {
			trials := 0
			if ses != nil {
				trials = ses.Trials()
			}
			reason := fmt.Sprintf("panic: %v", p)
			c.fail(i, reason, trials)
			out = TaskOutcome{Failed: reason}
		}
		if jn != nil {
			jn.Close()
		}
	}()

	tn, obj := t.New()
	req := t.Request
	if t.JournalPath != "" {
		var err error
		jn, err = journal.Open(t.JournalPath, t.Meta, c.opts.Sync)
		if err != nil {
			// An unopenable session journal is an environment problem,
			// not a session crash: report it in the outcome but write no
			// failed record, so a corrected environment can still resume
			// the task.
			return TaskOutcome{Failed: fmt.Sprintf("journal: %v", err)}
		}
		req.Journal = jn
	}
	c.mu.Lock()
	wantGrants := c.opts.Reallocate || len(c.replay[i]) > 0
	c.mu.Unlock()
	if wantGrants {
		req.Grants = &taskGrants{c: c, task: i}
	}
	ses = tuners.NewSession(pool.Wrap(obj), t.Space, req)
	res := tn.Run(ses)
	c.complete(i, res)
	return TaskOutcome{Result: res}
}

// complete settles a finished task: its surplus (base + granted
// budget minus trials actually consumed) is recorded and deposited in
// the bank. A cancelled session is deliberately not settled — no done
// record, no deposit — so its journal stays resumable.
func (c *campaign) complete(i int, res tuners.Result) {
	if res.Cancelled {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	trials := len(res.Trace)
	surplus := c.tasks[i].Request.Budget + c.granted[i] - trials
	if surplus < 0 {
		surplus = 0
	}
	if c.led != nil {
		payload, err := encodeResult(res)
		if err != nil {
			payload = nil
		}
		_ = c.led.AppendTaskDone(journal.TaskDone{Task: i, Trials: trials, Surplus: surplus, Result: payload})
	}
	c.bank += surplus
}

// fail settles a crashed task; its unspent budget flows back to the
// pool like a completed task's.
func (c *campaign) fail(i int, reason string, trials int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	surplus := c.tasks[i].Request.Budget + c.granted[i] - trials
	if surplus < 0 {
		surplus = 0
	}
	if c.led != nil {
		_ = c.led.AppendTaskFailed(journal.TaskFailed{Task: i, Reason: reason, Trials: trials, Surplus: surplus})
	}
	c.bank += surplus
}

// taskGrants adapts the campaign's budget pool to one session's
// tuners.GrantSource.
type taskGrants struct {
	c    *campaign
	task int
}

// Grant implements tuners.GrantSource. Recorded grants replay first —
// a resumed task re-applies the grants its original run received, in
// order, at whatever points its replaying tuner runs dry (the same
// points the original hit, since the decision path is deterministic).
// Only once the replay queue is empty are new grants decided, drawn
// from the bank and journaled write-ahead before being applied.
func (g *taskGrants) Grant(trials int) int {
	c := g.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if q := c.replay[g.task]; len(q) > 0 {
		n := q[0]
		c.replay[g.task] = q[1:]
		return n
	}
	if !c.opts.Reallocate || c.bank <= 0 {
		return 0
	}
	n := c.bank
	chunk := c.opts.GrantChunk
	if chunk <= 0 {
		chunk = c.tasks[g.task].Request.Budget
	}
	if chunk > 0 && n > chunk {
		n = chunk
	}
	gr := journal.Grant{Seq: c.grantSeq, Task: g.task, Evals: n, Trials: trials}
	if c.led != nil {
		if err := c.led.AppendGrant(gr); err != nil {
			// A grant that cannot be journaled must not be applied: an
			// unrecorded grant would make the resumed run diverge from
			// this one. Declining costs only optimization opportunity.
			return 0
		}
	}
	c.grantSeq++
	c.bank -= n
	c.granted[g.task] += n
	c.grants = append(c.grants, gr)
	return n
}

// savedResult is the ledger's JSON image of a tuners.Result. JSON
// round-trips float64 bit-exactly (Go marshals the shortest
// representation that parses back to the same value), so a decoded
// result compares equal to the live one field for field. BestSeconds
// is gated on Found because its not-found value is +Inf, which JSON
// cannot encode.
type savedResult struct {
	Best               map[string]float64    `json:"best,omitempty"`
	BestSeconds        float64               `json:"best_seconds,omitempty"`
	Found              bool                  `json:"found"`
	Evals              int                   `json:"evals"`
	SearchCost         float64               `json:"search_cost"`
	Trace              []float64             `json:"trace,omitempty"`
	Completed          []bool                `json:"completed,omitempty"`
	Proxy              []bool                `json:"proxy,omitempty"`
	SelectedParams     []string              `json:"selected_params,omitempty"`
	SelectionEvals     int                   `json:"selection_evals,omitempty"`
	SelectionCost      float64               `json:"selection_cost,omitempty"`
	Failures           journal.FailureCounts `json:"failures"`
	SurrogateFallbacks int                   `json:"surrogate_fallbacks,omitempty"`
}

func encodeResult(res tuners.Result) (json.RawMessage, error) {
	sr := savedResult{
		Found:              res.Found,
		Evals:              res.Evals,
		SearchCost:         res.SearchCost,
		Trace:              res.Trace,
		Completed:          res.Completed,
		Proxy:              res.Proxy,
		SelectedParams:     res.SelectedParams,
		SelectionEvals:     res.SelectionEvals,
		SelectionCost:      res.SelectionCost,
		Failures:           res.Failures.Counts(),
		SurrogateFallbacks: res.SurrogateFallbacks,
	}
	if res.Found {
		sr.Best = res.Best.ToMap()
		sr.BestSeconds = res.BestSeconds
	}
	return json.Marshal(sr)
}

func decodeResult(space *conf.Space, data json.RawMessage) (tuners.Result, error) {
	var sr savedResult
	if err := json.Unmarshal(data, &sr); err != nil {
		return tuners.Result{}, err
	}
	res := tuners.Result{
		BestSeconds:        math.Inf(1),
		Found:              sr.Found,
		Evals:              sr.Evals,
		SearchCost:         sr.SearchCost,
		Trace:              sr.Trace,
		Completed:          sr.Completed,
		Proxy:              sr.Proxy,
		SelectedParams:     sr.SelectedParams,
		SelectionEvals:     sr.SelectionEvals,
		SelectionCost:      sr.SelectionCost,
		SurrogateFallbacks: sr.SurrogateFallbacks,
		Failures: tuners.FailureStats{
			Failed:         sr.Failures.Failed,
			Transient:      sr.Failures.Transient,
			Retries:        sr.Failures.Retries,
			OOM:            sr.Failures.OOM,
			Infeasible:     sr.Failures.Infeasible,
			BackoffSeconds: sr.Failures.BackoffSeconds,
			Skipped:        sr.Failures.Skipped,
		},
	}
	if sr.Found {
		c, err := space.FromRaw(sr.Best)
		if err != nil {
			return tuners.Result{}, fmt.Errorf("best config: %w", err)
		}
		res.Best = c
		res.BestSeconds = sr.BestSeconds
	}
	return res, nil
}
