package schedule

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// acquireOrder drives a 1-slot pool through a fixed contention
// pattern: the holder pins the slot while n waiters of the given
// classes queue in order, then the slot is released repeatedly and the
// completion order of the waiters is recorded.
func acquireOrder(t *testing.T, classes []Class) []int {
	t.Helper()
	p := NewPool(1)
	p.Acquire(Bulk) // pin the only slot

	order := make([]int, 0, len(classes))
	var mu sync.Mutex
	queued := make(chan struct{}, len(classes))
	var wg sync.WaitGroup
	for i, c := range classes {
		wg.Add(1)
		go func(i int, c Class) {
			defer wg.Done()
			queued <- struct{}{}
			p.Acquire(c)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			p.Release()
		}(i, c)
		<-queued
		// The waiter signals before Acquire; poll until it is actually
		// queued so arrival order is deterministic.
		deadline := time.Now().Add(2 * time.Second)
		for {
			p.mu.Lock()
			n := 0
			for _, q := range p.queues {
				n += len(q)
			}
			p.mu.Unlock()
			if n > i {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued", i)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	p.Release() // hand the pinned slot down the queues
	wg.Wait()
	if got := p.InUse(); got != 0 {
		t.Fatalf("InUse = %d after every acquire released", got)
	}
	return order
}

// TestLatencyOvertakesQueuedBulk: with bulk waiters queued first, a
// later latency acquire is served before all of them, and the pool
// counts one preemption per queue jump.
func TestLatencyOvertakesQueuedBulk(t *testing.T) {
	order := acquireOrder(t, []Class{Bulk, Bulk, Latency, Bulk, Latency})
	want := []int{2, 4, 0, 1, 3} // both latency waiters first, then bulk FIFO
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
}

// TestPreemptionCounter: every latency hand-off past queued bulk work
// increments Stats().Preemptions exactly once.
func TestPreemptionCounter(t *testing.T) {
	p := NewPool(1)
	p.Acquire(Bulk)
	var wg sync.WaitGroup
	ready := make(chan struct{}, 3)
	enqueue := func(c Class) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ready <- struct{}{}
			p.Acquire(c)
			p.Release()
		}()
		<-ready
		waitQueued(t, p, c)
	}
	enqueue(Bulk)
	enqueue(Latency)
	enqueue(Latency)
	p.Release()
	wg.Wait()

	st := p.Stats()
	if st.Preemptions != 2 {
		t.Fatalf("Preemptions = %d, want 2 (two latency jumps over one queued bulk)", st.Preemptions)
	}
	if st.PerClass[Latency].Acquires != 2 || st.PerClass[Latency].Waited != 2 {
		t.Fatalf("latency class stats %+v", st.PerClass[Latency])
	}
	if st.PerClass[Bulk].Acquires != 2 { // pin + queued bulk
		t.Fatalf("bulk acquires = %d, want 2", st.PerClass[Bulk].Acquires)
	}
}

// waitQueued blocks until at least one waiter of class c is queued.
func waitQueued(t *testing.T, p *Pool, c Class) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		p.mu.Lock()
		n := len(p.queues[c])
		p.mu.Unlock()
		if n > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %v waiter ever queued", c)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestReentryDeterministicWithinClass: waiters of one class are served
// strictly FIFO however often they re-enter — a pod evicted and
// re-queued (Acquire → Release → Acquire) never jumps ahead of a
// waiter that arrived before its re-entry.
func TestReentryDeterministicWithinClass(t *testing.T) {
	for round := 0; round < 20; round++ {
		order := acquireOrder(t, []Class{Bulk, Bulk, Bulk, Bulk})
		for i, got := range order {
			if got != i {
				t.Fatalf("round %d: bulk FIFO violated: %v", round, order)
			}
		}
	}
}

// TestPoolInUseNeverLeaks hammers a small pool from both classes with
// mixed Acquire/Release and tryAcquire traffic (run under -race in
// CI); afterwards InUse must be exactly zero and the class accounting
// must add up.
func TestPoolInUseNeverLeaks(t *testing.T) {
	p := NewPool(3)
	const goroutines = 16
	const iters = 200
	var tries atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			class := Bulk
			if g%3 == 0 {
				class = Latency
			}
			for i := 0; i < iters; i++ {
				switch {
				case i%7 == 3:
					if p.tryAcquire() {
						tries.Add(1)
						p.Release()
					}
				default:
					p.Acquire(class)
					p.Release()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := p.InUse(); got != 0 {
		t.Fatalf("InUse = %d after all traffic drained, want 0", got)
	}
	st := p.Stats()
	total := st.PerClass[Bulk].Acquires + st.PerClass[Latency].Acquires + tries.Load()
	if total != goroutines*iters {
		t.Fatalf("acquire accounting %d, want %d", total, goroutines*iters)
	}
}

// TestLatencyWaitDropsUnderPriority is the satellite's demonstration:
// on a saturated 1-slot pool, a latency-class session's slot waits are
// strictly shorter than the same session's in the bulk class, because
// every hand-off lets it jump the bulk backlog.
func TestLatencyWaitDropsUnderPriority(t *testing.T) {
	// run saturates a 1-slot pool with 4 bulk holders that each pin
	// the slot for 2 ms, while one probe session in the given class
	// acquires 10 times. Returns the probe's mean wall-clock wait.
	run := func(probeClass Class) (mean float64, stats Stats) {
		p := NewPool(1)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					p.Acquire(Bulk)
					time.Sleep(2 * time.Millisecond)
					p.Release()
				}
			}()
		}
		const probes = 10
		var waited time.Duration
		for i := 0; i < probes; i++ {
			start := time.Now()
			p.Acquire(probeClass)
			waited += time.Since(start)
			time.Sleep(time.Millisecond)
			p.Release()
		}
		stats = p.Stats()
		close(stop)
		wg.Wait()
		return waited.Seconds() / probes, stats
	}
	bulkWait, _ := run(Bulk)
	latWait, latStats := run(Latency)
	// The bulk probe queues FIFO behind up to 4 competing holders; the
	// latency probe waits out at most the current holder. Demand a 2x
	// gap so scheduler jitter cannot flake the assertion.
	if latWait*2 >= bulkWait {
		t.Fatalf("latency wait %.4fs not clearly below bulk wait %.4fs", latWait, bulkWait)
	}
	// The pool's own accounting must agree with the wall clock: every
	// queued latency acquire contributed wait time.
	ls := latStats.PerClass[Latency]
	if ls.Acquires != 10 {
		t.Fatalf("latency probe charged %d acquires, want 10", ls.Acquires)
	}
	if ls.Waited > 0 && ls.WaitSeconds <= 0 {
		t.Fatalf("latency class waited %d times but accounted %.4fs", ls.Waited, ls.WaitSeconds)
	}
}
