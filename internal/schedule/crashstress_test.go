package schedule

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/sparksim"
	"repro/internal/tuners"
)

// The campaign crash-stress harness is the outer mirror of the core
// package's TestKillResumeStress: instead of one journaled session, it
// SIGKILLs a whole campaign runner — several concurrent sessions, a
// campaign ledger, per-session journals — at escalating depths and
// resumes until completion. The stitched campaign must be
// bit-identical to an uninterrupted in-process run, and a final
// verification round must construct zero tuners (every task settled
// from the ledger — the "no completed session re-executes" criterion).
// Gated behind ROBOTUNE_CRASH_STRESS so tier-1 `go test ./...` stays
// fast; `make crash-stress-campaign` (and the CI job) enable it.
const (
	campaignStressEnv = "ROBOTUNE_CRASH_STRESS"
	campaignChildEnv  = "ROBOTUNE_CAMPAIGN_CHILD"
	campaignDirEnv    = "ROBOTUNE_CAMPAIGN_DIR"
	campaignKills     = 5
)

func stressOptions() core.Options {
	o := core.Options{}
	// Large enough that SIGKILL lands mid-forest-training and mid-GP-fit,
	// small enough that one uninterrupted run stays under a minute.
	o.GenericSamples = 60
	o.TuningSamples = 10
	o.Forest.Trees = 50
	o.PermuteRepeats = 8
	o.BO.CandidatePool = 256
	o.BO.Starts = 4
	o.BO.GP.Restarts = 3
	o.Parallel = 4
	o.BOBatch = 2
	return o
}

// stressTasks builds the campaign under test: four sessions mixing
// ROBOTune and the baseline tuners over private simulator evaluators.
// newCount, when non-nil, counts Task.New invocations — the ledger
// must keep it at zero for settled tasks.
func stressTasks(space *conf.Space, dir string, newCount *int32) []Task {
	cluster := sparksim.PaperCluster()
	mk := func(name string, tn tuners.SessionTuner, w sparksim.Workload, evSeed uint64, budget int, seed uint64) Task {
		return Task{
			Name:    name,
			Space:   space,
			Request: tuners.Request{Budget: budget, Seed: seed},
			New: func() (tuners.SessionTuner, tuners.Objective) {
				if newCount != nil {
					atomic.AddInt32(newCount, 1)
				}
				return tn, sparksim.NewEvaluator(cluster, w, evSeed, 480)
			},
			JournalPath: dir + "/" + name + ".jnl",
			Meta:        journal.Meta{Seed: seed, Budget: budget, Workload: name, Tuner: tn.Name()},
		}
	}
	return []Task{
		mk("robotune-terasort", core.New(nil, stressOptions()), sparksim.TeraSort(20), 17, 70, 11),
		mk("random-kmeans", tuners.RandomSearch{}, sparksim.KMeans(4), 23, 60, 5),
		mk("robotune-kmeans", core.New(nil, stressOptions()), sparksim.KMeans(2), 53, 70, 13),
		mk("bestconfig-pagerank", tuners.BestConfig{RoundSize: 8}, sparksim.PageRank(2), 31, 60, 7),
	}
}

func stressCampaignOptions(dir string) CampaignOptions {
	return CampaignOptions{
		LedgerPath: dir + "/campaign.lgr",
		Sync:       journal.SyncAlways,
		Seed:       97,
		Config:     "campaign-crash-stress",
	}
}

// taskLine formats one task outcome for cross-process comparison;
// floats print as %x so the parity check is bit-exact.
func taskLine(i int, out TaskOutcome) string {
	r := out.Result
	return fmt.Sprintf("TASK %d failed=%q found=%v best=%x cost=%x evals=%d trace=%d",
		i, out.Failed, r.Found, r.BestSeconds, r.SearchCost, r.Evals, len(r.Trace))
}

// TestCampaignCrashChild is the subprocess body, not a standalone
// test: it runs (or resumes) the journaled campaign and reports every
// task outcome plus the number of tuners it had to construct.
func TestCampaignCrashChild(t *testing.T) {
	if os.Getenv(campaignChildEnv) != "1" {
		t.Skip("campaign crash-stress child body; run via TestCampaignKillResumeStress")
	}
	dir := os.Getenv(campaignDirEnv)
	var news int32
	res, err := NewScheduler(3, 4).RunCampaign(stressTasks(conf.SparkSpace(), dir, &news), stressCampaignOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("NEW_TASKS=%d\n", news)
	for i, out := range res.Tasks {
		fmt.Println(taskLine(i, out))
	}
	fmt.Printf("CAMPAIGN_DONE unused=%d resumed=%v\n", res.Unused, res.Resumed)
}

// TestCampaignKillResumeStress: SIGKILL the campaign runner at
// escalating depths — at least campaignKills times, with no graceful
// unwinding — resuming after each kill. The completed campaign must
// match the uninterrupted in-process baseline bit-for-bit, and one
// extra verification round must run with zero constructed tuners.
func TestCampaignKillResumeStress(t *testing.T) {
	if os.Getenv(campaignStressEnv) == "" {
		t.Skip("set " + campaignStressEnv + "=1 (or run `make crash-stress-campaign`) to enable")
	}

	// Uninterrupted baseline: same tasks, no durability, run in-process.
	base, err := NewScheduler(3, 4).RunCampaign(stressTasks(conf.SparkSpace(), t.TempDir(), nil), CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantLines := make([]string, len(base.Tasks))
	for i, out := range base.Tasks {
		if out.Failed != "" || !out.Result.Found {
			t.Fatalf("baseline task %d did not complete: %+v", i, out)
		}
		wantLines[i] = taskLine(i, out)
	}

	dir := t.TempDir()
	kills := 0
	delay := 100 * time.Millisecond
	var finalOut string
	for round := 0; ; round++ {
		if round > 80 {
			t.Fatal("campaign did not complete within 80 kill/resume rounds")
		}
		out, killed := campaignChild(t, dir, delay)
		if killed {
			kills++
			delay += 100 * time.Millisecond // walk the kill point through the campaign
			continue
		}
		if !strings.Contains(out, "CAMPAIGN_DONE") {
			t.Fatalf("child exited cleanly without finishing the campaign:\n%s", out)
		}
		finalOut = out
		break
	}
	if kills < campaignKills {
		t.Fatalf("campaign survived only %d SIGKILLs, want at least %d — widen the campaign", kills, campaignKills)
	}
	t.Logf("campaign completed after %d SIGKILLs", kills)

	for _, want := range wantLines {
		if !strings.Contains(finalOut, want) {
			t.Fatalf("stitched campaign diverged from the uninterrupted baseline:\nwant %s\ngot:\n%s", want, finalOut)
		}
	}

	// Verification round: everything must come straight from the ledger —
	// zero tuners constructed, zero evaluations spent, same results.
	out, killed := campaignChild(t, dir, time.Hour)
	if killed {
		t.Fatal("verification round timed out")
	}
	if !strings.Contains(out, "NEW_TASKS=0") {
		t.Fatalf("verification round re-executed completed sessions:\n%s", out)
	}
	if !strings.Contains(out, "resumed=true") {
		t.Fatalf("verification round did not resume from the ledger:\n%s", out)
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want) {
			t.Fatalf("ledger-settled results diverged:\nwant %s\ngot:\n%s", want, out)
		}
	}
}

// campaignChild re-executes this test binary as the campaign child,
// SIGKILLs it after the delay, and reports its combined output and
// whether the kill landed before exit.
func campaignChild(t *testing.T, dir string, delay time.Duration) (string, bool) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCampaignCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(), campaignChildEnv+"=1", campaignDirEnv+"="+dir)
	var buf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &buf, &buf
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting child: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
		return buf.String(), false
	case <-time.After(delay):
		_ = cmd.Process.Signal(syscall.SIGKILL)
		<-done
		return buf.String(), true
	}
}
