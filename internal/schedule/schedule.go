// Package schedule multiplexes concurrent tuning sessions over a
// shared, bounded pool of cluster evaluation slots — the campaign
// scheduler. A real deployment tunes several workloads at once
// against one cluster that can only run a few configurations side by
// side; the scheduler lets N sessions make progress while never
// exceeding the cluster's evaluation capacity.
//
// Determinism: each session owns a private objective, and the pool
// only delays evaluations — it never reorders anything a session
// observes and never changes what a batch computes (worker counts
// affect scheduling, not results, per the evaluator's deterministic
// parallelism). Campaign results are therefore bit-identical for any
// pool size, including 1; the tests assert it.
package schedule

import (
	"context"
	"sync"

	"repro/internal/conf"
	"repro/internal/sparksim"
	"repro/internal/tuners"
)

// Pool is the cluster's evaluation capacity: a counting semaphore
// over concurrently running configurations. Wrap an objective with
// Wrap to charge its evaluations against the pool.
type Pool struct {
	sem chan struct{}
}

// NewPool builds a pool with the given capacity (minimum 1).
func NewPool(capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{sem: make(chan struct{}, capacity)}
}

// Capacity returns the pool's slot count.
func (p *Pool) Capacity() int { return cap(p.sem) }

// InUse returns the number of slots currently held. It is the pool's
// teardown invariant: after every session of a campaign has returned
// — including ones that panicked and were contained — InUse must be 0,
// or some evaluation leaked a slot. RunCampaign asserts this.
func (p *Pool) InUse() int { return len(p.sem) }

func (p *Pool) acquire() { p.sem <- struct{}{} }
func (p *Pool) release() { <-p.sem }
func (p *Pool) tryAcquire() bool {
	select {
	case p.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Wrap charges every evaluation of obj against the pool: sequential
// evaluations hold one slot, batch evaluations hold one slot plus as
// many extra slots as are free at dispatch (capped by the requested
// worker count), so a batch degrades gracefully under contention
// instead of deadlocking the campaign. Counter reads (Evals,
// SearchCost) pass through ungated.
//
// The wrapper preserves the optional capabilities the session and
// ROBOTune probe for — guard caps, stream restore and workload
// identity — forwarding each to the inner objective when it supports
// it and degrading to the capability-absent behavior when it does
// not. Batch evaluation is only claimed when the inner objective
// claims it, because its presence changes which algorithm path a
// tuner picks.
func (p *Pool) Wrap(obj tuners.Objective) tuners.Objective {
	g := gated{pool: p, inner: obj}
	_, isSpec := obj.(tuners.SpecEvaluator)
	_, isBatch := obj.(tuners.BatchEvaluator)
	switch {
	case isSpec:
		return &gatedSpec{g}
	case isBatch:
		return &gatedBatch{g}
	}
	return &g
}

type gated struct {
	pool  *Pool
	inner tuners.Objective
}

func (g *gated) Evaluate(c conf.Config) sparksim.EvalRecord {
	g.pool.acquire()
	defer g.pool.release()
	return g.inner.Evaluate(c)
}

// EvaluateWithCap forwards the guard capability; an inner objective
// without it evaluates uncapped, exactly as the session's own
// fallback would.
func (g *gated) EvaluateWithCap(c conf.Config, cap float64) sparksim.EvalRecord {
	g.pool.acquire()
	defer g.pool.release()
	if cc, ok := g.inner.(tuners.Capper); ok {
		return cc.EvaluateWithCap(c, cap)
	}
	return g.inner.Evaluate(c)
}

func (g *gated) SearchCost() float64 { return g.inner.SearchCost() }
func (g *gated) Evals() int          { return g.inner.Evals() }

// RestoreStream forwards the resume capability when present.
func (g *gated) RestoreStream(evals int, cost float64) {
	if sr, ok := g.inner.(tuners.StreamRestorer); ok {
		sr.RestoreStream(evals, cost)
	}
}

// WorkloadName and DatasetName forward the memoization identity; an
// anonymous inner objective reads as the empty workload, which every
// consumer treats as "no identity".
func (g *gated) WorkloadName() string {
	if id, ok := g.inner.(interface{ WorkloadName() string }); ok {
		return id.WorkloadName()
	}
	return ""
}

func (g *gated) DatasetName() string {
	if id, ok := g.inner.(interface{ DatasetName() string }); ok {
		return id.DatasetName()
	}
	return ""
}

type gatedBatch struct {
	gated
}

// EvaluateBatchCtx runs a batch with one guaranteed slot plus
// whatever extra capacity is free right now. The inner batch is
// worker-count invariant, so the opportunistic grant affects only
// wall-clock, never results.
func (g *gatedBatch) EvaluateBatchCtx(ctx context.Context, cfgs []conf.Config, workers int) []sparksim.EvalRecord {
	if recs, cancelled := skipAllCancelled(ctx, cfgs); cancelled {
		return recs
	}
	want := workers
	if want > len(cfgs) {
		want = len(cfgs)
	}
	if want < 1 {
		want = 1
	}
	g.pool.acquire()
	granted := 1
	for granted < want && g.pool.tryAcquire() {
		granted++
	}
	defer func() {
		for i := 0; i < granted; i++ {
			g.pool.release()
		}
	}()
	return g.inner.(tuners.BatchEvaluator).EvaluateBatchCtx(ctx, cfgs, granted)
}

// gatedSpec gates an objective with the unified SpecEvaluator
// capability (cap + fidelity + workers in one EvalSpec). Spec-capable
// objectives also answer the legacy batch surface through the same
// gate, so whichever path a tuner probes for charges the pool
// identically.
type gatedSpec struct {
	gated
}

// EvaluateSpec runs one spec-driven evaluation holding one slot.
func (g *gatedSpec) EvaluateSpec(c conf.Config, spec sparksim.EvalSpec) sparksim.EvalRecord {
	g.pool.acquire()
	defer g.pool.release()
	return g.inner.(tuners.SpecEvaluator).EvaluateSpec(c, spec)
}

// EvaluateSpecCtx runs a spec batch with one guaranteed slot plus
// whatever extra capacity is free right now, like the legacy batch
// gate: the inner batch is worker-count invariant, so the grant
// affects only wall-clock, never results.
func (g *gatedSpec) EvaluateSpecCtx(ctx context.Context, cfgs []conf.Config, spec sparksim.EvalSpec) []sparksim.EvalRecord {
	if recs, cancelled := skipAllCancelled(ctx, cfgs); cancelled {
		return recs
	}
	want := spec.Workers
	if want > len(cfgs) {
		want = len(cfgs)
	}
	if want < 1 {
		want = 1
	}
	g.pool.acquire()
	granted := 1
	for granted < want && g.pool.tryAcquire() {
		granted++
	}
	defer func() {
		for i := 0; i < granted; i++ {
			g.pool.release()
		}
	}()
	spec.Workers = granted
	return g.inner.(tuners.SpecEvaluator).EvaluateSpecCtx(ctx, cfgs, spec)
}

// EvaluateBatchCtx keeps the legacy batch capability claimable on
// spec-capable objectives (its presence changes which path a tuner
// picks), routed through the same spec gate.
func (g *gatedSpec) EvaluateBatchCtx(ctx context.Context, cfgs []conf.Config, workers int) []sparksim.EvalRecord {
	return g.EvaluateSpecCtx(ctx, cfgs, sparksim.EvalSpec{Workers: workers})
}

// skipAllCancelled is the batch gate's cancellation re-check: a batch
// dispatched after its campaign was cancelled must not burn pool slots
// (possibly blocking on acquire) computing results every consumer
// discards. The all-Skipped response is bit-identical to what the
// inner evaluators return for a pre-cancelled context, so the fix
// changes scheduling only, never results.
func skipAllCancelled(ctx context.Context, cfgs []conf.Config) ([]sparksim.EvalRecord, bool) {
	if ctx == nil || ctx.Err() == nil {
		return nil, false
	}
	recs := make([]sparksim.EvalRecord, len(cfgs))
	for i := range recs {
		recs[i] = sparksim.EvalRecord{Config: cfgs[i], Skipped: true}
	}
	return recs, true
}

// Job is one tuning session for Scheduler.Run: the tuner, its private
// objective, the search space and the session request.
type Job struct {
	Tuner     tuners.SessionTuner
	Objective tuners.Objective
	Space     *conf.Space
	Request   tuners.Request
}

// Scheduler runs tuning campaigns: N sessions multiplexed over a
// shared evaluation pool, at most Sessions of them in flight at once.
type Scheduler struct {
	pool     *Pool
	sessions int
}

// NewScheduler builds a scheduler with the given evaluation-pool
// capacity and concurrent-session bound (sessions <= 0 means "as many
// as there are jobs").
func NewScheduler(evaluators, sessions int) *Scheduler {
	return &Scheduler{pool: NewPool(evaluators), sessions: sessions}
}

// Pool returns the shared evaluation pool.
func (s *Scheduler) Pool() *Pool { return s.pool }

// Run executes every job concurrently (bounded by the session limit),
// charging all evaluations against the shared pool, and returns the
// results in job order.
func (s *Scheduler) Run(jobs []Job) []tuners.Result {
	results := make([]tuners.Result, len(jobs))
	s.RunTasks(len(jobs), func(i int, pool *Pool) {
		j := jobs[i]
		ses := tuners.NewSession(pool.Wrap(j.Objective), j.Space, j.Request)
		results[i] = j.Tuner.Run(ses)
	})
	return results
}

// RunTasks is the compound-task form of Run: it invokes task(i, pool)
// for i in [0, n) on concurrent goroutines (bounded by the session
// limit) and returns when all have finished. Each task wraps its own
// objectives with the shared pool; experiments use this to run one
// multi-dataset tuning sequence per task.
func (s *Scheduler) RunTasks(n int, task func(i int, pool *Pool)) {
	slots := s.sessions
	if slots <= 0 || slots > n {
		slots = n
	}
	if slots < 1 {
		return
	}
	gate := make(chan struct{}, slots)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		gate <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-gate }()
			task(i, s.pool)
		}(i)
	}
	wg.Wait()
}
