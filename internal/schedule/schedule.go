// Package schedule multiplexes concurrent tuning sessions over a
// shared, bounded pool of cluster evaluation slots — the campaign
// scheduler. A real deployment tunes several workloads at once
// against one cluster that can only run a few configurations side by
// side; the scheduler lets N sessions make progress while never
// exceeding the cluster's evaluation capacity.
//
// Slots are handed out by priority class: latency-sensitive sessions
// (an analyst waiting on an interactive ask/tell session) overtake
// queued bulk re-tuning work, and within a class waiters are served
// strictly FIFO. A queue jump is counted as a preemption and the pool
// tracks per-class wait time, so a deployment can see exactly what
// the priority split buys.
//
// Determinism: each session owns a private objective, and the pool
// only delays evaluations — it never reorders anything a session
// observes and never changes what a batch computes (worker counts
// affect scheduling, not results, per the evaluator's deterministic
// parallelism). Campaign results are therefore bit-identical for any
// pool size, including 1; the tests assert it.
package schedule

import (
	"context"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/tuners"
)

// Class is a slot-priority class.
type Class int

const (
	// Bulk is the default class: background re-tuning campaigns that
	// only care about throughput.
	Bulk Class = iota
	// Latency marks latency-sensitive sessions; their acquires are
	// served before any queued Bulk waiter.
	Latency
	numClasses
)

// String names the class for metrics and logs.
func (c Class) String() string {
	switch c {
	case Bulk:
		return "bulk"
	case Latency:
		return "latency"
	}
	return "unknown"
}

// ClassStats aggregates one class's slot-acquisition history.
type ClassStats struct {
	// Acquires counts completed slot acquisitions.
	Acquires int64
	// Waited counts acquisitions that had to queue.
	Waited int64
	// WaitSeconds is the cumulative time the class's acquisitions
	// spent queued.
	WaitSeconds float64
}

// Stats is a snapshot of the pool's priority accounting.
type Stats struct {
	// Preemptions counts queue jumps: a released slot handed to a
	// Latency waiter while Bulk waiters queued ahead of it in arrival
	// order.
	Preemptions int64
	// PerClass indexes ClassStats by Class.
	PerClass [numClasses]ClassStats
}

// waiter is one queued acquire; the slot is transferred by closing
// ready, so a woken waiter never races tryAcquire for its slot.
type waiter struct {
	ready chan struct{}
	since time.Time
}

// Pool is the cluster's evaluation capacity: a counting semaphore
// over concurrently running configurations, with per-class priority
// queues. Wrap an objective with Wrap (or WrapClass) to charge its
// evaluations against the pool.
type Pool struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	queues   [numClasses][]*waiter
	stats    Stats
}

// NewPool builds a pool with the given capacity (minimum 1).
func NewPool(capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{capacity: capacity}
}

// Capacity returns the pool's slot count.
func (p *Pool) Capacity() int { return p.capacity }

// InUse returns the number of slots currently held. It is the pool's
// teardown invariant: after every session of a campaign has returned
// — including ones that panicked and were contained — InUse must be 0,
// or some evaluation leaked a slot. RunCampaign asserts this.
func (p *Pool) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inUse
}

// Stats returns a snapshot of the pool's preemption and wait
// accounting.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Acquire blocks until the caller holds one slot in the given class
// (out-of-range classes degrade to Bulk). It is the manual form of
// WrapClass for callers gating non-objective work — robotuned charges
// each session's propose computation against a shared pool this way.
// Every Acquire must be paired with exactly one Release.
func (p *Pool) Acquire(class Class) {
	if class < Bulk || class >= numClasses {
		class = Bulk
	}
	p.acquire(class)
}

// Release returns a slot taken with Acquire.
func (p *Pool) Release() { p.release() }

// acquire blocks until the caller holds one slot. A free slot is
// granted immediately; otherwise the caller queues FIFO within its
// class and releases hand slots to the highest class first.
func (p *Pool) acquire(class Class) {
	p.mu.Lock()
	if p.inUse < p.capacity && p.idle(class) {
		p.inUse++
		p.stats.PerClass[class].Acquires++
		p.mu.Unlock()
		return
	}
	w := &waiter{ready: make(chan struct{}), since: time.Now()}
	p.queues[class] = append(p.queues[class], w)
	p.mu.Unlock()

	<-w.ready

	p.mu.Lock()
	st := &p.stats.PerClass[class]
	st.Acquires++
	st.Waited++
	st.WaitSeconds += time.Since(w.since).Seconds()
	p.mu.Unlock()
}

// idle reports whether an arriving acquire of the class may take a
// free slot directly: no waiter of an equal or higher class may be
// queued, or FIFO-within-class (and priority across classes) would be
// violated during the instant between a release and its hand-off.
func (p *Pool) idle(class Class) bool {
	for c := class; c < numClasses; c++ {
		if len(p.queues[c]) > 0 {
			return false
		}
	}
	return true
}

// release returns one slot: the highest-priority waiter (FIFO within
// its class) inherits it directly — so tryAcquire can never steal a
// slot a queued session was promised — and a Latency hand-off past
// queued Bulk work counts as one preemption.
func (p *Pool) release() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := numClasses - 1; c >= 0; c-- {
		q := p.queues[c]
		if len(q) == 0 {
			continue
		}
		w := q[0]
		copy(q, q[1:])
		q[len(q)-1] = nil
		p.queues[c] = q[:len(q)-1]
		if c == Latency && len(p.queues[Bulk]) > 0 {
			p.stats.Preemptions++
		}
		close(w.ready) // slot transfers; inUse unchanged
		return
	}
	p.inUse--
}

// tryAcquire opportunistically takes a free slot without queueing; it
// refuses whenever any waiter is queued (in particular while a
// Latency session waits), so batch extras can never starve queued
// work.
func (p *Pool) tryAcquire() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.inUse >= p.capacity || !p.idle(Bulk) {
		return false
	}
	p.inUse++
	return true
}

// Wrap charges every evaluation of obj against the pool in the Bulk
// class: sequential evaluations hold one slot, batch evaluations hold
// one slot plus as many extra slots as are free at dispatch (capped
// by the requested worker count), so a batch degrades gracefully
// under contention instead of deadlocking the campaign. Counter reads
// (Evals, SearchCost) pass through ungated.
//
// The wrapper preserves the optional capabilities the session and
// ROBOTune probe for — fidelity support, stream restore and workload
// identity — forwarding each to the inner objective when it supports
// it and degrading to the capability-absent behavior when it does
// not. Batch evaluation is only claimed when the inner objective
// claims it, because its presence changes which algorithm path a
// tuner picks.
func (p *Pool) Wrap(obj tuners.Objective) tuners.Objective {
	return p.WrapClass(obj, Bulk)
}

// WrapClass is Wrap with an explicit priority class; Latency
// objectives overtake queued Bulk work at every slot hand-off.
func (p *Pool) WrapClass(obj tuners.Objective, class Class) tuners.Objective {
	if class < Bulk || class >= numClasses {
		class = Bulk
	}
	g := gated{pool: p, inner: obj, class: class}
	if _, ok := obj.(backend.BatchEvaluator); ok {
		return &gatedBatch{g}
	}
	return &g
}

type gated struct {
	pool  *Pool
	inner tuners.Objective
	class Class
}

// EvaluateSpec runs one spec-driven evaluation holding one slot.
func (g *gated) EvaluateSpec(c conf.Config, spec backend.EvalSpec) backend.EvalRecord {
	g.pool.acquire(g.class)
	defer g.pool.release()
	return g.inner.EvaluateSpec(c, spec)
}

func (g *gated) SearchCost() float64 { return g.inner.SearchCost() }
func (g *gated) Evals() int          { return g.inner.Evals() }

// RestoreStream forwards the resume capability when present.
func (g *gated) RestoreStream(evals int, cost float64) {
	if sr, ok := g.inner.(backend.StreamRestorer); ok {
		sr.RestoreStream(evals, cost)
	}
}

// SupportsFidelity forwards the proxy-run capability, so
// multi-fidelity sessions behave identically under pooling.
func (g *gated) SupportsFidelity() bool {
	if fs, ok := g.inner.(backend.FidelitySupporter); ok {
		return fs.SupportsFidelity()
	}
	return false
}

// WorkloadName and DatasetName forward the memoization identity; an
// anonymous inner objective reads as the empty workload, which every
// consumer treats as "no identity".
func (g *gated) WorkloadName() string {
	if id, ok := g.inner.(backend.Identifiable); ok {
		return id.WorkloadName()
	}
	return ""
}

func (g *gated) DatasetName() string {
	if id, ok := g.inner.(backend.Identifiable); ok {
		return id.DatasetName()
	}
	return ""
}

type gatedBatch struct {
	gated
}

// EvaluateSpecCtx runs a spec batch with one guaranteed slot plus
// whatever extra capacity is free right now (denied while anything
// queues, so extras never starve waiting sessions). The inner batch
// is worker-count invariant, so the opportunistic grant affects only
// wall-clock, never results.
func (g *gatedBatch) EvaluateSpecCtx(ctx context.Context, cfgs []conf.Config, spec backend.EvalSpec) []backend.EvalRecord {
	if recs, cancelled := skipAllCancelled(ctx, cfgs); cancelled {
		return recs
	}
	want := spec.Workers
	if want > len(cfgs) {
		want = len(cfgs)
	}
	if want < 1 {
		want = 1
	}
	g.pool.acquire(g.class)
	granted := 1
	for granted < want && g.pool.tryAcquire() {
		granted++
	}
	defer func() {
		for i := 0; i < granted; i++ {
			g.pool.release()
		}
	}()
	spec.Workers = granted
	return g.inner.(backend.BatchEvaluator).EvaluateSpecCtx(ctx, cfgs, spec)
}

// skipAllCancelled is the batch gate's cancellation re-check: a batch
// dispatched after its campaign was cancelled must not burn pool slots
// (possibly blocking on acquire) computing results every consumer
// discards. The all-Skipped response is bit-identical to what the
// inner evaluators return for a pre-cancelled context, so the fix
// changes scheduling only, never results.
func skipAllCancelled(ctx context.Context, cfgs []conf.Config) ([]backend.EvalRecord, bool) {
	if ctx == nil || ctx.Err() == nil {
		return nil, false
	}
	recs := make([]backend.EvalRecord, len(cfgs))
	for i := range recs {
		recs[i] = backend.EvalRecord{Config: cfgs[i], Skipped: true}
	}
	return recs, true
}

// Job is one tuning session for Scheduler.Run: the tuner, its private
// objective, the search space, the session request and the slot
// priority class.
type Job struct {
	Tuner     tuners.SessionTuner
	Objective tuners.Objective
	Space     *conf.Space
	Request   tuners.Request
	// Class is the job's slot priority (zero value Bulk).
	Class Class
}

// Scheduler runs tuning campaigns: N sessions multiplexed over a
// shared evaluation pool, at most Sessions of them in flight at once.
type Scheduler struct {
	pool     *Pool
	sessions int
}

// NewScheduler builds a scheduler with the given evaluation-pool
// capacity and concurrent-session bound (sessions <= 0 means "as many
// as there are jobs").
func NewScheduler(evaluators, sessions int) *Scheduler {
	return &Scheduler{pool: NewPool(evaluators), sessions: sessions}
}

// Pool returns the shared evaluation pool.
func (s *Scheduler) Pool() *Pool { return s.pool }

// Run executes every job concurrently (bounded by the session limit),
// charging all evaluations against the shared pool in each job's
// class, and returns the results in job order.
func (s *Scheduler) Run(jobs []Job) []tuners.Result {
	results := make([]tuners.Result, len(jobs))
	s.RunTasks(len(jobs), func(i int, pool *Pool) {
		j := jobs[i]
		ses := tuners.NewSession(pool.WrapClass(j.Objective, j.Class), j.Space, j.Request)
		results[i] = j.Tuner.Run(ses)
	})
	return results
}

// RunTasks is the compound-task form of Run: it invokes task(i, pool)
// for i in [0, n) on concurrent goroutines (bounded by the session
// limit) and returns when all have finished. Each task wraps its own
// objectives with the shared pool; experiments use this to run one
// multi-dataset tuning sequence per task.
func (s *Scheduler) RunTasks(n int, task func(i int, pool *Pool)) {
	slots := s.sessions
	if slots <= 0 || slots > n {
		slots = n
	}
	if slots < 1 {
		return
	}
	gate := make(chan struct{}, slots)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		gate <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-gate }()
			task(i, s.pool)
		}(i)
	}
	wg.Wait()
}
