package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteSessionsCSV dumps every session of the comparison as CSV rows
// (one per tuning session), for analysis outside Go:
//
//	tuner,workload,dataset,repeat,quality_s,found,search_cost_s,selection_cost_s,evals
func (c *Comparison) WriteSessionsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"tuner", "workload", "dataset", "repeat",
		"quality_s", "found", "search_cost_s", "selection_cost_s", "evals",
	}); err != nil {
		return err
	}
	for _, s := range c.Sessions {
		rec := []string{
			s.Tuner,
			s.Workload,
			fmt.Sprintf("D%d", s.DatasetIdx+1),
			strconv.Itoa(s.Repeat),
			fmtFloat(s.Quality),
			strconv.FormatBool(s.Found),
			fmtFloat(s.SearchCost),
			fmtFloat(s.SelectionCost),
			strconv.Itoa(len(s.Trace)),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScaledCSV dumps Figure 3/4-style rows as CSV:
//
//	workload,dataset,ROBOTune,BestConfig,Gunther,RandomSearch
func WriteScaledCSV(w io.Writer, rows []Fig3Row) error {
	cw := csv.NewWriter(w)
	header := append([]string{"workload", "dataset"}, TunerNames...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{ShortName[r.Workload], fmt.Sprintf("D%d", r.DatasetIdx+1)}
		for _, tn := range TunerNames {
			rec = append(rec, fmtFloat(r.Scaled[tn]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTracesCSV dumps every evaluation of every session in long
// form, suitable for plotting convergence curves:
//
//	tuner,workload,dataset,repeat,iteration,seconds
func (c *Comparison) WriteTracesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"tuner", "workload", "dataset", "repeat", "iteration", "seconds"}); err != nil {
		return err
	}
	for _, s := range c.Sessions {
		for i, v := range s.Trace {
			rec := []string{
				s.Tuner, s.Workload, fmt.Sprintf("D%d", s.DatasetIdx+1),
				strconv.Itoa(s.Repeat), strconv.Itoa(i + 1), fmtFloat(v),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', 3, 64)
}
