package experiments

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/tuners"

	// The experiments are a leaf of the dependency graph: they drive
	// the backends through the registry, so they link the registration
	// shim rather than the simulator packages.
	_ "repro/internal/backend/backends"
)

// sparkEval is the capability surface the paper experiments rely on:
// the core evaluation contract plus every optional capability the
// Spark evaluator implements. Asserting the full set here (rather
// than using *sparksim.Evaluator) keeps the experiments on the
// backend seam while preserving exactly the probes the tuner stack
// would discover on its own.
type sparkEval interface {
	tuners.Objective
	backend.BatchEvaluator
	backend.StreamRestorer
	backend.FidelitySupporter
	backend.Identifiable
	backend.Measurer
}

// sparkBackend returns the registered Spark backend. The experiments
// reproduce the paper's evaluation, which is defined on the Spark
// simulator; the clustersim grid has its own entry point.
func sparkBackend() backend.Backend {
	b, err := backend.Lookup("spark")
	if err != nil {
		panic(fmt.Sprintf("experiments: spark backend not registered: %v", err))
	}
	return b
}

// sparkGrid rebuilds the paper's 5-workload x 3-dataset grid (Table
// 1) through the backend catalog.
func sparkGrid() map[string][3]backend.Workload {
	b := sparkBackend()
	grid := make(map[string][3]backend.Workload, len(WorkloadOrder))
	for _, name := range WorkloadOrder {
		var wls [3]backend.Workload
		for di := 0; di < 3; di++ {
			w, err := b.Workload(name, di)
			if err != nil {
				panic(fmt.Sprintf("experiments: %s/D%d: %v", name, di+1, err))
			}
			wls[di] = w
		}
		grid[name] = wls
	}
	return grid
}

// newSparkEval builds a Spark evaluator for one tuning session at the
// paper's 480 s cap.
func newSparkEval(w backend.Workload, seed uint64, faults backend.FaultPlan) sparkEval {
	ev, err := sparkBackend().NewEvaluator(w, seed, 480, faults)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	se, ok := ev.(sparkEval)
	if !ok {
		panic(fmt.Sprintf("experiments: %T lacks the capabilities the paper experiments need", ev))
	}
	return se
}

// scaledWorkload resolves a workload family at an arbitrary scale via
// the backend's optional scale-constructor capability.
func scaledWorkload(name string, scale float64) backend.Workload {
	s, ok := sparkBackend().(interface {
		ScaledWorkload(string, float64) (backend.Workload, error)
	})
	if !ok {
		panic("experiments: spark backend lost its scaled-workload capability")
	}
	w, err := s.ScaledWorkload(name, scale)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return w
}

// renamedWorkload gives a workload a fresh identity (and therefore a
// fresh memoization/mapping cache key) without changing its behavior.
func renamedWorkload(w backend.Workload, name string) backend.Workload {
	r, ok := sparkBackend().(interface {
		RenamedWorkload(backend.Workload, string) (backend.Workload, error)
	})
	if !ok {
		panic("experiments: spark backend lost its rename capability")
	}
	out, err := r.RenamedWorkload(w, name)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return out
}

// runOnce times one configuration outside any evaluator — no search
// cost, no faults, an arbitrary cap (Inf allowed).
func runOnce(w backend.Workload, c conf.Config, seed uint64, capSeconds float64) backend.Outcome {
	r, ok := sparkBackend().(interface {
		RunOnce(backend.Workload, conf.Config, uint64, float64) (backend.Outcome, error)
	})
	if !ok {
		panic("experiments: spark backend lost its raw-run capability")
	}
	out, err := r.RunOnce(w, c, seed, capSeconds)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return out
}
