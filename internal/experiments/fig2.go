package experiments

import (
	"repro/internal/backend"

	"fmt"

	"repro/internal/forest"
	"repro/internal/linmodel"
	"repro/internal/sample"
	"repro/internal/stats"
)

// Fig2Result holds Figure 2: five-fold cross-validated R² of the four
// candidate importance models on LHS configuration/runtime samples of
// PageRank and KMeans (three datasets each).
type Fig2Result struct {
	// Scores[workload-dataset][model] is the CV R².
	Scores map[string]map[string]float64
	// Labels preserves row order, e.g. "PR-D1".
	Labels []string
}

// Fig2Models is the model order of Figure 2.
var Fig2Models = []string{"Lasso", "ElasticNet", "RandomForest", "ExtraTrees"}

// Fig2ModelComparison reproduces Figure 2: generate `samples` LHS
// configurations (paper: 200), collect execution times, and compare
// the coefficient of determination of linear vs tree-based models
// under five-fold cross-validation. Higher is better; the paper finds
// RF best and the linear models far behind.
func Fig2ModelComparison(cfg Config, samples int) Fig2Result {
	cfg = cfg.withDefaults()
	if samples <= 0 {
		samples = 200
	}
	space := sparkSpace()
	grid := sparkGrid()

	out := Fig2Result{Scores: map[string]map[string]float64{}}
	for _, wname := range []string{"PageRank", "KMeans"} {
		for di := 0; di < 3; di++ {
			w := grid[wname][di]
			label := fmt.Sprintf("%s-D%d", ShortName[wname], di+1)
			out.Labels = append(out.Labels, label)

			seed := cfg.Seed + uint64(di) + hashName(wname)
			ev := newSparkEval(w, seed, backend.FaultPlan{})
			design := sample.LHS(samples, space.Dim(), sample.NewRNG(seed))
			x := make([][]float64, samples)
			y := make([]float64, samples)
			for i, u := range design {
				rec := ev.EvaluateSpec(space.Decode(u), backend.EvalSpec{})
				x[i] = append([]float64(nil), u...)
				y[i] = rec.Seconds
			}

			out.Scores[label] = map[string]float64{
				"Lasso": cvR2(x, y, seed, func(xi [][]float64, yi []float64) predictor {
					return linmodel.Fit(xi, yi, linmodel.LassoDefaults())
				}),
				"ElasticNet": cvR2(x, y, seed, func(xi [][]float64, yi []float64) predictor {
					return linmodel.Fit(xi, yi, linmodel.ElasticNetDefaults())
				}),
				"RandomForest": cvR2(x, y, seed, func(xi [][]float64, yi []float64) predictor {
					// The model comparison always uses the full
					// ensemble size; Fast mode only shrinks tuning
					// runs.
					fc := forest.RFDefaults()
					fc.Seed = seed
					return forest.Train(xi, yi, fc)
				}),
				"ExtraTrees": cvR2(x, y, seed, func(xi [][]float64, yi []float64) predictor {
					fc := forest.ETDefaults()
					fc.Seed = seed
					return forest.Train(xi, yi, fc)
				}),
			}
		}
	}
	return out
}

type predictor interface{ Predict([]float64) float64 }

// cvR2 computes five-fold cross-validated R² of a model family.
func cvR2(x [][]float64, y []float64, seed uint64, train func([][]float64, []float64) predictor) float64 {
	n := len(x)
	folds := stats.KFold(n, 5, sample.NewRNG(seed^0xcf01d))
	pred := make([]float64, n)
	for _, fold := range folds {
		trainIdx := stats.TrainTest(n, fold)
		xi := make([][]float64, len(trainIdx))
		yi := make([]float64, len(trainIdx))
		for k, i := range trainIdx {
			xi[k] = x[i]
			yi[k] = y[i]
		}
		m := train(xi, yi)
		for _, i := range fold {
			pred[i] = m.Predict(x[i])
		}
	}
	return stats.R2(y, pred)
}

// Render prints Figure 2.
func (f Fig2Result) Render() string {
	t := newTable(8, 10, 12, 14, 12)
	t.row("", Fig2Models...)
	t.line()
	for _, label := range f.Labels {
		cells := make([]string, len(Fig2Models))
		for i, m := range Fig2Models {
			cells[i] = fmt.Sprintf("%.3f", f.Scores[label][m])
		}
		t.row(label, cells...)
	}
	return "Figure 2 — cross-validated R² of importance models (higher is better)\n" + t.String()
}
