package experiments

import (
	"fmt"
	"math"

	"repro/internal/backend"
	"repro/internal/bo"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/gp"
	"repro/internal/sample"
)

// AblationResult collects the design-choice ablations of DESIGN.md in
// one table: each row switches off (or replaces) one ROBOTune design
// decision and reports the effect.
type AblationResult struct {
	Rows []AblationRow
}

// AblationRow is one ablation outcome.
type AblationRow struct {
	Name string
	// Metric and Baseline are the compared quantity (meaning depends
	// on the ablation; see Detail).
	Metric, Baseline float64
	// Detail explains what was measured.
	Detail string
}

// Ablations runs the design-choice ablation suite on a fixed tuning
// problem (TeraSort-30GB, the most IO-shaped workload). Budgets stay
// small — the point is direction, not precision; the benchmarks in
// bench_test.go run the same comparisons with custom metrics.
func Ablations(cfg Config) AblationResult {
	cfg = cfg.withDefaults()
	space := sparkSpace()
	w := scaledWorkload("TeraSort", 30)
	budget := cfg.Budget / 2
	if budget < 30 {
		budget = 30
	}

	newEval := func(seed uint64) sparkEval {
		return newSparkEval(w, seed, backend.FaultPlan{})
	}
	baseOpts := func() core.Options {
		o := cfg.robotuneOptions()
		o.GenericSamples = 80
		o.PermuteRepeats = 3
		return o
	}
	quality := func(opts core.Options, seed uint64) float64 {
		rt := core.New(nil, opts)
		ev := newEval(seed)
		res := rt.Tune(ev, space, budget, seed)
		if !res.Found {
			return 480
		}
		return ev.Measure(res.Best, cfg.MeasureReps, seed*13+1)
	}
	meanQuality := func(opts core.Options) float64 {
		var s float64
		const reps = 2
		for r := uint64(0); r < reps; r++ {
			s += quality(opts, 40+r)
		}
		return s / reps
	}

	var rows []AblationRow

	// 1. GP-Hedge portfolio vs the single EI acquisition.
	hedge := meanQuality(baseOpts())
	eiOnly := baseOpts()
	eiOnly.BO.Portfolio = []bo.Acquisition{bo.EI{Xi: 0.01}}
	rows = append(rows, AblationRow{
		Name: "GP-Hedge vs EI-only", Metric: hedge, Baseline: meanQuality(eiOnly),
		Detail: "best config quality (s); hedge should track the best single acquisition",
	})

	// 2. Guard on vs off: search cost.
	cost := func(guard float64, seed uint64) float64 {
		opts := baseOpts()
		opts.GuardMultiple = guard
		rt := core.New(nil, opts)
		ev := newEval(seed)
		res := rt.Tune(ev, space, budget, seed)
		return res.SearchCost
	}
	rows = append(rows, AblationRow{
		Name: "guard on vs off", Metric: cost(2, 44), Baseline: cost(-1, 44),
		Detail: "tuning-phase search cost (s); the guard kills bad runs early",
	})

	// 3. Selection vs raw 44-dim BO (quality under equal budget).
	sel := meanQuality(baseOpts())
	raw := rawBOQuality(cfg, space, newEval(46), budget, 46)
	rows = append(rows, AblationRow{
		Name: "RF selection vs raw 44-dim BO", Metric: sel, Baseline: raw,
		Detail: "best config quality (s); dimension reduction is §3.1's premise",
	})

	// 4. LHS vs uniform initial design: GP held-out error.
	lhsMSE, uniMSE := initDesignMSE(space, newEval(47))
	rows = append(rows, AblationRow{
		Name: "LHS vs uniform init", Metric: lhsMSE, Baseline: uniMSE,
		Detail: "GP held-out MSE from 20-point initial designs (averaged over seeds)",
	})

	return AblationResult{Rows: rows}
}

// rawBOQuality runs plain BO over all 44 dimensions.
func rawBOQuality(cfg Config, space *conf.Space, ev sparkEval, budget int, seed uint64) float64 {
	ecfg := bo.DefaultConfig()
	ecfg.Seed = seed
	ecfg.CandidatePool = 128
	ecfg.Starts = 1
	ecfg.GP.Restarts = 1
	engine := bo.New(space.Dim(), ecfg)
	rng := sample.NewRNG(seed)
	best := math.Inf(1)
	var bestCfg conf.Config
	note := func(rec backend.EvalRecord) {
		if rec.Completed && rec.Seconds < best {
			best, bestCfg = rec.Seconds, rec.Config
		}
	}
	init := budget / 3
	if init < 10 {
		init = 10
	}
	for _, u := range sample.LHS(init, space.Dim(), rng) {
		rec := ev.EvaluateSpec(space.Decode(u), backend.EvalSpec{})
		engine.Tell(u, math.Log(rec.Seconds))
		note(rec)
	}
	for k := init; k < budget; k++ {
		u, err := engine.Suggest()
		if err != nil {
			break
		}
		rec := ev.EvaluateSpec(space.Decode(u), backend.EvalSpec{})
		engine.Tell(u, math.Log(rec.Seconds))
		note(rec)
	}
	if !bestCfg.Valid() {
		return 480
	}
	return ev.Measure(bestCfg, cfg.MeasureReps, seed*13+1)
}

// initDesignMSE fits GPs on LHS vs uniform 20-point designs over a
// fixed subspace and compares held-out prediction error.
func initDesignMSE(space *conf.Space, ev sparkEval) (lhs, uniform float64) {
	sub, err := space.Sub([]string{
		conf.ExecutorCores, conf.ExecutorMemory, conf.ExecutorInstances,
		conf.DefaultParallelism, conf.MemoryFraction,
	}, space.Default().With(conf.ExecutorMemory, 32768))
	if err != nil {
		return math.NaN(), math.NaN()
	}
	score := func(design sample.Design, seed uint64) float64 {
		y := make([]float64, len(design))
		for i, u := range design {
			y[i] = ev.EvaluateSpec(sub.Decode(u), backend.EvalSpec{}).Seconds
		}
		gcfg := gp.DefaultConfig()
		gcfg.Restarts = 1
		gcfg.Seed = seed
		g, err := gp.Fit(design, y, gcfg)
		if err != nil {
			return math.Inf(1)
		}
		probes := sample.LHS(30, sub.Dim(), sample.NewRNG(991))
		var mse float64
		for _, u := range probes {
			mu, _ := g.Predict(u)
			d := mu - ev.EvaluateSpec(sub.Decode(u), backend.EvalSpec{}).Seconds
			mse += d * d
		}
		return mse / float64(len(probes))
	}
	const seeds = 4
	for s := uint64(0); s < seeds; s++ {
		lhs += score(sample.LHS(20, sub.Dim(), sample.NewRNG(s+5)), s)
		uniform += score(sample.Uniform(20, sub.Dim(), sample.NewRNG(s+5)), s)
	}
	return lhs / seeds, uniform / seeds
}

// Render prints the ablation table.
func (a AblationResult) Render() string {
	t := newTable(32, 12, 12, 8)
	t.row("ablation", "with", "without", "ratio")
	t.line()
	for _, r := range a.Rows {
		ratio := r.Baseline / r.Metric
		t.row(r.Name,
			fmt.Sprintf("%.1f", r.Metric),
			fmt.Sprintf("%.1f", r.Baseline),
			fmt.Sprintf("%.2fx", ratio))
	}
	out := "Design-choice ablations (with = ROBOTune's choice; ratio > 1 favors it)\n" + t.String()
	for _, r := range a.Rows {
		out += fmt.Sprintf("  %-32s %s\n", r.Name+":", r.Detail)
	}
	return out
}
