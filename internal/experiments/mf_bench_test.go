package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestBenchMultiFidelity is the multi-fidelity acceptance run: the
// ROBOTune-vs-BOHB cost-to-quality comparison at a larger budget than
// the always-on CI gate, recorded in BENCH_multifidelity.json at the
// repo root. Gated behind ROBOTUNE_BENCH_MF=1 (`make
// bench-multifidelity`) because it simulates several full tuning
// campaigns.
func TestBenchMultiFidelity(t *testing.T) {
	if os.Getenv("ROBOTUNE_BENCH_MF") == "" {
		t.Skip("set ROBOTUNE_BENCH_MF=1 (or run `make bench-multifidelity`) for the acceptance run")
	}
	cfg := Config{Seed: 1, Budget: 60, Repeats: 1, MeasureReps: 2, Fast: true}
	rows := RunMultiFidelity(cfg, nil)
	t.Logf("\n%s", RenderMultiFidelity(rows))

	passed := 0
	for _, r := range rows {
		if r.Pass {
			passed++
		}
	}
	if passed < 2 {
		t.Errorf("only %d/%d workloads meet the 5%%-quality / 50%%-cost acceptance criterion", passed, len(rows))
	}

	type doc struct {
		Description string             `json:"description"`
		Environment map[string]any     `json:"environment"`
		Notes       []string           `json:"notes"`
		Benchmarks  []MultiFidelityRow `json:"benchmarks"`
	}
	d := doc{
		Description: "Multi-fidelity cost-to-quality: BOHB (fidelity ladder + cost-aware EI, shared surrogate across fidelities) vs full-fidelity ROBOTune on the paper workloads' D1 datasets. Reproduce with `make bench-multifidelity`.",
		Environment: map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cpu":        cpuModel(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"date":       time.Now().UTC().Format("2006-01-02"),
		},
		Notes: []string{
			"Acceptance criterion: on >= 2 workloads BOHB's incumbent reaches within 5% of ROBOTune's best-found execution time after spending at most 50% of the simulated seconds ROBOTune's search consumed (cost_ratio <= 0.5).",
			"Costs are sums over each session's evaluation trace in simulated cluster seconds, so both tuners are measured in the same units; BOHB's spend includes every reduced-fidelity proxy trial.",
			"BOHB's fidelity axis is chosen per workload: stage-prefix ladders for the iterative workloads (PageRank, KMeans), input-scale for TeraSort — see internal/experiments/multifidelity.go (mfAxis).",
			"The always-on CI gate (TestMultiFidelityQualityRegression) runs the same comparison at budget 40; this acceptance run uses budget 60.",
		},
		Benchmarks: rows,
	}
	out, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(repoRootMF(t), "BENCH_multifidelity.json")
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

// repoRootMF walks up from the package directory to the go.mod.
func repoRootMF(t *testing.T) string {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the experiments package")
		}
		dir = parent
	}
}

// cpuModel best-effort reads the CPU model name (Linux only).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return fmt.Sprintf("unknown (%d cores)", runtime.NumCPU())
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return fmt.Sprintf("unknown (%d cores)", runtime.NumCPU())
}
