package experiments

import (
	"os"
	"testing"
)

// TestMFSweep is an env-gated diagnostic, not a gate: it reruns the
// multi-fidelity comparison across seeds 1–5 and logs every row, to
// check that the pinned gate seed is representative rather than a
// fluke when the benchmark configuration changes.
func TestMFSweep(t *testing.T) {
	if os.Getenv("MF_SWEEP") == "" {
		t.Skip("set MF_SWEEP=1")
	}
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := Config{Seed: seed, Budget: 40, Repeats: 1, MeasureReps: 2, Fast: true}
		rows := RunMultiFidelity(cfg, nil)
		passed := 0
		for _, r := range rows {
			if r.Pass {
				passed++
			}
			t.Logf("seed %d %s: best %.1f vs %.1f reached=%v ratio %.3f pass=%v",
				seed, r.Workload, r.BOHBBest, r.RoboBest, r.Reached, r.CostRatio, r.Pass)
		}
		t.Logf("seed %d: %d/%d", seed, passed, len(rows))
	}
}
