package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/memo"
)

// DefaultRow is one workload/dataset entry of the §5.2 comparison
// with Spark's out-of-the-box configuration.
type DefaultRow struct {
	Workload   string
	DatasetIdx int
	// DefaultSeconds is the default configuration's (uncapped)
	// execution time; NaN when it fails.
	DefaultSeconds float64
	// DefaultFails is true when the default OOMs or errors (the paper
	// reports this for PR, CC and the larger TeraSort inputs).
	DefaultFails bool
	// TunedSeconds is ROBOTune's best configuration's time.
	TunedSeconds float64
	// Speedup is DefaultSeconds / TunedSeconds (NaN when the default
	// fails — the speedup is effectively infinite).
	Speedup float64
}

// DefaultComparison reproduces §5.2's "Comparison with the default":
// ROBOTune tunes each workload, and its best configuration is
// compared with the Spark default (evaluated without the tuning-time
// cap, since it is outside the search).
func DefaultComparison(cfg Config) []DefaultRow {
	cfg = cfg.withDefaults()
	space := sparkSpace()
	grid := sparkGrid()
	def := space.Default()

	var rows []DefaultRow
	for _, wname := range WorkloadOrder {
		store := memo.NewStore()
		rt := core.New(store, cfg.robotuneOptions())
		for di := 0; di < 3; di++ {
			w := grid[wname][di]
			seed := cfg.Seed + hashName(wname) + uint64(di)
			ev := cfg.newEvaluator(w, seed)
			res := cfg.tune(rt, ev, space, cfg.Budget, seed)

			row := DefaultRow{Workload: wname, DatasetIdx: di}
			out := runOnce(w, def, seed*3+1, math.Inf(1))
			if out.OOM || out.Infeasible {
				row.DefaultFails = true
				row.DefaultSeconds = math.NaN()
			} else {
				row.DefaultSeconds = out.Seconds
			}
			if res.Found {
				row.TunedSeconds = ev.Measure(res.Best, cfg.MeasureReps, seed*5+2)
			} else {
				row.TunedSeconds = math.NaN()
			}
			if !row.DefaultFails && res.Found {
				row.Speedup = row.DefaultSeconds / row.TunedSeconds
			} else {
				row.Speedup = math.NaN()
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// RenderDefault prints the §5.2 default-comparison table.
func RenderDefault(rows []DefaultRow) string {
	t := newTable(8, 14, 12, 10)
	t.row("", "default", "tuned", "speedup")
	t.line()
	for _, r := range rows {
		def := "FAILS (OOM)"
		if !r.DefaultFails {
			def = fmt.Sprintf("%.0fs", r.DefaultSeconds)
		}
		tuned := "-"
		if !math.IsNaN(r.TunedSeconds) {
			tuned = fmt.Sprintf("%.0fs", r.TunedSeconds)
		}
		sp := "-"
		if !math.IsNaN(r.Speedup) {
			sp = fmt.Sprintf("%.1fx", r.Speedup)
		}
		t.row(fmt.Sprintf("%s-D%d", ShortName[r.Workload], r.DatasetIdx+1), def, tuned, sp)
	}
	return "§5.2 — tuned configuration vs Spark default\n" + t.String()
}
