package experiments

import (
	"repro/internal/backend"

	"fmt"

	"repro/internal/core"
	"repro/internal/sample"
	"repro/internal/stats"
)

// Fig7Result holds Figure 7: parameter-selection recall as the
// generic LHS sample count shrinks, per workload.
type Fig7Result struct {
	// SampleCounts is the x axis (descending in the paper's plot).
	SampleCounts []int
	// Recall[workload][i] is the recall at SampleCounts[i] against
	// the 200-sample ground truth.
	Recall map[string][]float64
}

// Fig7SelectionRecall reproduces §5.5: the parameters selected with
// 200 generic LHS samples form the ground truth; selection is
// repeated with fewer samples and scored by recall (fraction of
// ground-truth parameters recovered). The paper finds recall stays at
// 1 down to 100 samples, justifying ROBOTune's default.
func Fig7SelectionRecall(cfg Config, counts []int) Fig7Result {
	cfg = cfg.withDefaults()
	if len(counts) == 0 {
		counts = []int{200, 175, 150, 125, 100, 75, 50, 25, 15, 10}
	}
	space := sparkSpace()
	grid := sparkGrid()
	// Selection stability is the subject of this experiment: always
	// use the paper's full importance settings (10 permutations, 100
	// trees) even in fast mode.
	opts := cfg.robotuneOptions()
	opts.PermuteRepeats = 10
	opts.Forest.Trees = 100
	rt := core.New(nil, opts)

	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}

	out := Fig7Result{SampleCounts: counts, Recall: map[string][]float64{}}
	for _, wname := range WorkloadOrder {
		w := grid[wname][1] // middle dataset, like a representative input
		seed := cfg.Seed + hashName(wname) + 31
		ev := newSparkEval(w, seed, backend.FaultPlan{})

		// One master sample set; smaller selections use prefixes, so
		// the experiment isolates sample-count effects from sampling
		// variance.
		design := sample.LHS(maxCount, space.Dim(), sample.NewRNG(seed))
		x := make([][]float64, maxCount)
		y := make([]float64, maxCount)
		for i, u := range design {
			rec := ev.EvaluateSpec(space.Decode(u), backend.EvalSpec{})
			x[i] = append([]float64(nil), u...)
			y[i] = rec.Seconds
		}

		truthSel, err := rt.SelectFromData(space, x, y, seed)
		if err != nil {
			continue
		}
		// Recall is measured on the parameters that clear the 0.05
		// importance threshold (the paper's criterion); the padding
		// ROBOTune adds for BO viability is noise-ranked by design
		// and excluded.
		truth := truthSel.ThresholdParams
		if len(truth) == 0 {
			truth = truthSel.Params
		}

		recalls := make([]float64, len(counts))
		for i, n := range counts {
			if n > maxCount {
				n = maxCount
			}
			sel, err := rt.SelectFromData(space, x[:n], y[:n], seed)
			if err != nil {
				recalls[i] = 0
				continue
			}
			recalls[i] = stats.Recall(truth, sel.ThresholdParams)
		}
		out.Recall[wname] = recalls
	}
	return out
}

// Render prints Figure 7.
func (f Fig7Result) Render() string {
	widths := []int{22}
	hdr := make([]string, len(f.SampleCounts))
	for i, n := range f.SampleCounts {
		hdr[i] = fmt.Sprintf("%d", n)
		widths = append(widths, 6)
	}
	t := newTable(widths...)
	t.row("workload \\ samples", hdr...)
	t.line()
	for _, w := range WorkloadOrder {
		rec, ok := f.Recall[w]
		if !ok {
			continue
		}
		cells := make([]string, len(rec))
		for i, r := range rec {
			cells[i] = fmt.Sprintf("%.2f", r)
		}
		t.row(ShortName[w], cells...)
	}
	return "Figure 7 — selection recall vs generic sample count (truth at 200)\n" + t.String()
}
