package experiments

import (
	"fmt"

	"repro/internal/memo"
)

// AmortizationRow reports cumulative total cost (selection + tuning)
// after tuning the first k datasets of a workload family.
type AmortizationRow struct {
	Datasets int
	// Cumulative total cost per tuner, in simulated seconds. For
	// ROBOTune this includes the one-time selection cost — the point
	// of the experiment is when that overhead pays for itself.
	Total map[string]float64
}

// AmortizationExperiment quantifies §5.5's closing claim: "ROBOTune
// is preferable in terms of cost when multiple datasets (e.g. two or
// more) of a workload are tuned, as the parameter selection cost is
// amortized across tuning sessions." Each tuner tunes D1, D2, D3 of
// the workload in sequence (ROBOTune keeps its caches); rows report
// cumulative cost including ROBOTune's selection phase.
func AmortizationExperiment(cfg Config, workload string) []AmortizationRow {
	cfg = cfg.withDefaults()
	if workload == "" {
		workload = "PageRank"
	}
	grid := sparkGrid()
	wls, ok := grid[workload]
	if !ok {
		return nil
	}
	space := sparkSpace()

	cum := map[string][]float64{}
	for _, tname := range TunerNames {
		store := memo.NewStore()
		tn := cfg.buildTuner(tname, store)
		running := 0.0
		for di := 0; di < 3; di++ {
			seed := cfg.Seed + uint64(di)*97 + hashName(workload+tname)
			ev := cfg.newEvaluator(wls[di], seed)
			res := cfg.tune(tn, ev, space, cfg.Budget, seed)
			running += res.SearchCost + res.SelectionCost
			cum[tname] = append(cum[tname], running)
		}
	}

	rows := make([]AmortizationRow, 3)
	for di := 0; di < 3; di++ {
		rows[di] = AmortizationRow{Datasets: di + 1, Total: map[string]float64{}}
		for _, tname := range TunerNames {
			rows[di].Total[tname] = cum[tname][di]
		}
	}
	return rows
}

// RenderAmortization prints the cumulative-cost table and the
// crossover summary.
func RenderAmortization(workload string, rows []AmortizationRow) string {
	t := newTable(10, 12, 12, 12, 14)
	t.row("datasets", TunerNames...)
	t.line()
	for _, r := range rows {
		cells := make([]string, len(TunerNames))
		for i, tn := range TunerNames {
			cells[i] = fmt.Sprintf("%.0f", r.Total[tn])
		}
		t.row(fmt.Sprintf("%d", r.Datasets), cells...)
	}
	out := fmt.Sprintf("§5.5 amortization — cumulative cost incl. ROBOTune's one-time selection (%s)\n%s",
		workload, t.String())
	// Crossover note: first row where ROBOTune (with its selection
	// overhead included) is cheapest.
	for _, r := range rows {
		rt := r.Total["ROBOTune"]
		cheapest := true
		for _, tn := range TunerNames[1:] {
			if r.Total[tn] < rt {
				cheapest = false
			}
		}
		if cheapest {
			out += fmt.Sprintf("ROBOTune's total (selection included) is cheapest from %d dataset(s) on.\n", r.Datasets)
			break
		}
	}
	return out
}
