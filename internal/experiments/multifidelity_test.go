package experiments

import (
	"testing"
)

// TestMultiFidelityShape checks the comparison machinery itself:
// every row carries both tuners' numbers, BOHB actually ran proxy
// trials, and the run is deterministic.
func TestMultiFidelityShape(t *testing.T) {
	cfg := tinyConfig()
	rows := RunMultiFidelity(cfg, []string{"KMeans"})
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if r.RoboBest <= 0 || r.BOHBBest <= 0 || r.RoboCost <= 0 || r.BOHBCost <= 0 {
		t.Fatalf("non-positive metrics: %+v", r)
	}
	if r.BOHBProxyEvals == 0 {
		t.Fatalf("BOHB ran no reduced-fidelity trials: %+v", r)
	}
	if r.BOHBProxyEvals >= r.BOHBEvals {
		t.Fatalf("every BOHB trial was a proxy: %+v", r)
	}
	again := RunMultiFidelity(cfg, []string{"KMeans"})
	if again[0] != r {
		t.Fatalf("not deterministic: %+v vs %+v", again[0], r)
	}
}

// TestMultiFidelityQualityRegression is the CI gate behind the
// headline claim: on at least two of the three benchmark workloads,
// BOHB's final configuration must be within 5% of ROBOTune's while
// spending at most half the full-fidelity simulated seconds. The run
// is fully seeded, so a failure is a behavior change, not noise.
func TestMultiFidelityQualityRegression(t *testing.T) {
	cfg := Config{Seed: 1, Budget: 40, Repeats: 1, MeasureReps: 2, Fast: true}
	rows := RunMultiFidelity(cfg, nil)
	if len(rows) != len(MultiFidelityWorkloads) {
		t.Fatalf("rows = %d, want %d", len(rows), len(MultiFidelityWorkloads))
	}
	passed := 0
	for _, r := range rows {
		t.Logf("%s: best %.1fs vs %.1fs, reached=%v at %.0fs of robotune's %.0fs (ratio %.3f), pass=%v",
			r.Workload, r.BOHBBest, r.RoboBest, r.Reached, r.CostToReach, r.RoboCost, r.CostRatio, r.Pass)
		if r.Pass {
			passed++
		}
	}
	if passed < 2 {
		t.Fatalf("only %d/%d workloads meet the 5%%-quality / 50%%-cost targets:\n%s",
			passed, len(rows), RenderMultiFidelity(rows))
	}
}
