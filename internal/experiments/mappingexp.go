package experiments

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/memo"
)

// MappingRow is one workload's outcome in the mapping experiment.
type MappingRow struct {
	Workload string
	// Mapped is true when the mapper adopted a known family's
	// selection instead of running full selection.
	Mapped bool
	// MatchedTo names the adopted family (empty if none).
	MatchedTo string
	// SelectionEvals is what the session actually spent before tuning
	// (probes only when mapped; probes + full selection otherwise).
	SelectionEvals int
	// Quality is the verified best-config time.
	Quality float64
	// BaselineQuality is the same session without the mapper (full
	// selection), for comparison.
	BaselineQuality float64
	// BaselineSelectionEvals is the unmapped session's selection
	// spend.
	BaselineSelectionEvals int
}

// MappingExperiment evaluates the workload-mapping extension: known
// families (PageRank, KMeans) are tuned first to seed the mapper and
// caches; then *unseen-but-related* workloads arrive — a renamed
// graph job that behaves like PageRank, and TriangleCount, a genuine
// new graph workload. Mapping should route the lookalike to
// PageRank's selection for the price of a few probes; results for the
// genuinely new workload depend on whether its signature clears the
// threshold.
func MappingExperiment(cfg Config) []MappingRow {
	cfg = cfg.withDefaults()
	space := sparkSpace()

	// A renamed PageRank gets a fresh cache key with the same behavior.
	lookalike := renamedWorkload(scaledWorkload("PageRank", 7.5), "WebGraphRank")
	arrivals := []backend.Workload{lookalike, scaledWorkload("TriangleCount", 3)}

	run := func(withMapper bool) map[string]MappingRow {
		opts := cfg.robotuneOptions()
		var mapper *mapping.Mapper
		if withMapper {
			mapper = mapping.NewMapper(space, 8, cfg.Seed^0x3a11)
			opts.Mapper = mapper
			opts.MapThreshold = 0.9
		}
		rt := core.New(memo.NewStore(), opts)

		// Seed with the known families.
		for i, w := range []backend.Workload{scaledWorkload("PageRank", 5), scaledWorkload("KMeans", 200)} {
			ev := newSparkEval(w, cfg.Seed+uint64(i), backend.FaultPlan{})
			rt.Tune(ev, space, cfg.Budget, cfg.Seed+uint64(i))
		}

		out := map[string]MappingRow{}
		for i, w := range arrivals {
			seed := cfg.Seed + 50 + uint64(i)
			ev := newSparkEval(w, seed, backend.FaultPlan{})
			res := rt.Tune(ev, space, cfg.Budget, seed)
			row := MappingRow{
				Workload:       w.WorkloadName(),
				SelectionEvals: res.SelectionEvals,
			}
			if res.Found {
				row.Quality = ev.Measure(res.Best, cfg.MeasureReps, seed*7+3)
			} else {
				row.Quality = 480
			}
			if withMapper {
				row.Mapped = res.SelectionEvals <= mapper.ProbeCount()
				if row.Mapped {
					if sel, ok := rt.Store().Selection(w.WorkloadName()); ok && len(sel) > 0 {
						// Identify the donor by matching selections.
						for _, known := range []string{"PageRank", "KMeans"} {
							if donor, ok := rt.Store().Selection(known); ok && sameStrings(donor, sel) {
								row.MatchedTo = known
							}
						}
					}
				}
			}
			out[w.WorkloadName()] = row
		}
		return out
	}

	with := run(true)
	without := run(false)

	var rows []MappingRow
	for _, w := range arrivals {
		r := with[w.WorkloadName()]
		b := without[w.WorkloadName()]
		r.BaselineQuality = b.Quality
		r.BaselineSelectionEvals = b.SelectionEvals
		rows = append(rows, r)
	}
	return rows
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RenderMapping prints the mapping experiment table.
func RenderMapping(rows []MappingRow) string {
	t := newTable(16, 8, 12, 12, 12, 12, 12)
	t.row("workload", "mapped", "matched to", "sel. evals", "baseline", "quality", "base qual")
	t.line()
	for _, r := range rows {
		matched := "-"
		if r.MatchedTo != "" {
			matched = r.MatchedTo
		}
		t.row(r.Workload,
			fmt.Sprintf("%v", r.Mapped),
			matched,
			fmt.Sprintf("%d", r.SelectionEvals),
			fmt.Sprintf("%d", r.BaselineSelectionEvals),
			fmt.Sprintf("%.1fs", r.Quality),
			fmt.Sprintf("%.1fs", r.BaselineQuality))
	}
	return "Workload mapping (extension) — unseen workloads inheriting known selections\n" + t.String()
}
