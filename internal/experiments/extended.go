package experiments

import (
	"fmt"

	"repro/internal/memo"
	"repro/internal/stats"
	"repro/internal/tuners"
)

// ExtendedTunerNames adds the extension baselines implemented beyond
// the paper (SuccessiveHalving over execution-time caps, and
// separable CMA-ES) to the paper's four.
var ExtendedTunerNames = []string{
	"ROBOTune", "BestConfig", "Gunther", "RandomSearch", "SuccessiveHalving", "CMAES",
}

// ExtendedRow summarizes one tuner across a workload set in the
// extended comparison.
type ExtendedRow struct {
	Tuner string
	// MeanQuality is the measured execution time of final configs,
	// averaged over workloads/datasets and scaled to Random Search.
	MeanQuality float64
	// MeanCost is the search cost scaled to Random Search.
	MeanCost float64
	// CostPerEval is the unscaled mean simulated seconds per
	// evaluation (SHA's early-kill advantage shows here).
	CostPerEval float64
}

// ExtendedComparison runs every tuner — the paper's four plus the
// extensions — on the named workloads' D1/D2 datasets and returns the
// per-tuner summary. It reuses the Session machinery so CSV export
// works on the result too.
func ExtendedComparison(cfg Config, workloads []string) ([]ExtendedRow, *Comparison) {
	cfg = cfg.withDefaults()
	if len(workloads) == 0 {
		workloads = []string{"PageRank", "KMeans", "TeraSort"}
	}
	grid := sparkGrid()
	space := sparkSpace()
	comp := &Comparison{Config: cfg}

	buildExtended := func(name string, store *memo.Store) tuners.SessionTuner {
		switch name {
		case "SuccessiveHalving":
			return tuners.SuccessiveHalving{}
		case "CMAES":
			return tuners.CMAES{}
		default:
			return cfg.buildTuner(name, store)
		}
	}

	for _, wname := range workloads {
		wls, ok := grid[wname]
		if !ok {
			continue
		}
		for _, tname := range ExtendedTunerNames {
			for rep := 0; rep < cfg.Repeats; rep++ {
				store := memo.NewStore()
				tn := buildExtended(tname, store)
				for di := 0; di < 2; di++ {
					seed := cfg.Seed + uint64(rep)*1009 + uint64(di)*101 + hashName(wname+tname)
					ev := cfg.newEvaluator(wls[di], seed)
					res := cfg.tune(tn, ev, space, cfg.Budget, seed)
					quality := 480.0
					if res.Found {
						quality = ev.Measure(res.Best, cfg.MeasureReps, cfg.Seed*77+uint64(di))
					}
					comp.Sessions = append(comp.Sessions, Session{
						Tuner: tname, Workload: wname, DatasetIdx: di, Repeat: rep,
						Quality: quality, Found: res.Found,
						SearchCost: res.SearchCost, SelectionCost: res.SelectionCost,
						Trace: res.Trace,
					})
				}
			}
		}
	}

	// Summaries scaled to RandomSearch per (workload, dataset).
	rows := make([]ExtendedRow, 0, len(ExtendedTunerNames))
	for _, tname := range ExtendedTunerNames {
		var qSum, cSum float64
		var n int
		var totalCost, totalEvals float64
		for _, wname := range workloads {
			for di := 0; di < 2; di++ {
				rsQ := meanOf(comp.pick("RandomSearch", wname, di), func(s Session) float64 { return s.Quality })
				rsC := meanOf(comp.pick("RandomSearch", wname, di), func(s Session) float64 { return s.SearchCost })
				ss := comp.pick(tname, wname, di)
				if len(ss) == 0 || rsQ == 0 || rsC == 0 {
					continue
				}
				qSum += meanOf(ss, func(s Session) float64 { return s.Quality }) / rsQ
				cSum += meanOf(ss, func(s Session) float64 { return s.SearchCost }) / rsC
				n++
				for _, s := range ss {
					totalCost += s.SearchCost
					totalEvals += float64(len(s.Trace))
				}
			}
		}
		if n == 0 {
			continue
		}
		rows = append(rows, ExtendedRow{
			Tuner:       tname,
			MeanQuality: qSum / float64(n),
			MeanCost:    cSum / float64(n),
			CostPerEval: totalCost / stats.Max([]float64{totalEvals, 1}),
		})
	}
	return rows, comp
}

// RenderExtended prints the extended comparison table.
func RenderExtended(rows []ExtendedRow) string {
	t := newTable(18, 14, 12, 14)
	t.row("tuner", "quality vs RS", "cost vs RS", "cost per eval")
	t.line()
	for _, r := range rows {
		t.row(r.Tuner,
			fmt.Sprintf("%.3f", r.MeanQuality),
			fmt.Sprintf("%.3f", r.MeanCost),
			fmt.Sprintf("%.0fs", r.CostPerEval))
	}
	return "Extended comparison — paper tuners + SuccessiveHalving + CMA-ES (lower is better)\n" + t.String()
}
