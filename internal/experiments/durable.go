package experiments

import (
	"encoding/json"
	"fmt"

	"repro/internal/journal"
	"repro/internal/memo"
	"repro/internal/schedule"
	"repro/internal/tuners"
)

// CampaignInfo reports what the durable comparison campaign reused or
// lost across restarts.
type CampaignInfo struct {
	// LedgerPath is the campaign ledger file.
	LedgerPath string
	// Resumed is true when the ledger carried records from an earlier
	// run.
	Resumed bool
	// Reused is how many (workload, tuner, repeat) tasks were satisfied
	// straight from done records, with zero evaluations spent.
	Reused int
	// Failed names tasks that crashed (this run or a recorded one);
	// their sessions are absent from the comparison.
	Failed []string
}

// fingerprint condenses the result-affecting configuration into the
// ledger manifest, so resuming with a different grid fails fast
// instead of stitching incompatible halves. Workers and Concurrency
// are deliberately absent — they change wall-clock, never results.
func (c Config) fingerprint() string {
	return fmt.Sprintf("budget=%d repeats=%d measure=%d fast=%t faults=%+v retries=%d",
		c.Budget, c.Repeats, c.MeasureReps, c.Fast, c.Faults, c.Retry.MaxRetries)
}

// RunComparisonDurable is RunComparison with campaign-level
// durability: every (workload, tuner, repeat) task is recorded in a
// CRC-framed campaign ledger at ledgerPath, and each of its three
// dataset sessions keeps a session journal next to it
// (<ledger>.tNN.dK.jnl). A run killed at any point — including
// SIGKILL — resumes mid-grid: tasks with done records return their
// recorded sessions without re-running anything, in-flight tasks
// resume through their session journals, and the stitched Comparison
// is bit-identical to an uninterrupted run. A panicking task is
// recorded failed and the rest of the grid completes.
//
// An empty ledgerPath runs without durability and is exactly
// RunComparison.
func RunComparisonDurable(cfg Config, filter func(workload string) bool, ledgerPath string) (*Comparison, *CampaignInfo, error) {
	cfg = cfg.withDefaults()
	grid := sparkGrid()
	space := sparkSpace()
	comp := &Comparison{Config: cfg}

	type campaignTask struct {
		wname, tname string
		rep          int
	}
	var tasks []campaignTask
	for _, wname := range WorkloadOrder {
		if filter != nil && !filter(wname) {
			continue
		}
		for _, tname := range TunerNames {
			for rep := 0; rep < cfg.Repeats; rep++ {
				tasks = append(tasks, campaignTask{wname: wname, tname: tname, rep: rep})
			}
		}
	}

	perTask := make([][]Session, len(tasks))
	settled := make([]bool, len(tasks))
	failed := make([]string, len(tasks))

	var led *journal.Ledger
	var info *CampaignInfo
	if ledgerPath != "" {
		meta := journal.LedgerMeta{Seed: cfg.Seed, Config: cfg.fingerprint()}
		for i, t := range tasks {
			meta.Tasks = append(meta.Tasks, fmt.Sprintf("%s/%s/rep%d", t.wname, t.tname, t.rep))
			meta.Journals = append(meta.Journals, sessionJournalPath(ledgerPath, i, -1))
		}
		var err error
		led, err = journal.OpenLedger(ledgerPath, meta, journal.SyncAlways)
		if err != nil {
			return nil, nil, err
		}
		defer led.Close()
		info = &CampaignInfo{LedgerPath: ledgerPath, Resumed: led.Resumed()}
		for i := range tasks {
			if d, ok := led.TaskDone(i); ok {
				var ss []Session
				if err := json.Unmarshal(d.Result, &ss); err != nil {
					return nil, nil, fmt.Errorf("experiments: task %d (%s): recorded sessions unreadable: %w",
						i, meta.Tasks[i], err)
				}
				perTask[i] = ss
				settled[i] = true
				info.Reused++
			} else if f, ok := led.TaskFailed(i); ok {
				settled[i] = true
				failed[i] = f.Reason
			}
		}
	}

	sched := schedule.NewScheduler(cfg.Concurrency, cfg.Concurrency)
	sched.RunTasks(len(tasks), func(i int, pool *schedule.Pool) {
		if settled[i] {
			return
		}
		if led != nil {
			_ = led.AppendStart(i)
		}
		t := tasks[i]
		defer func() {
			// Panic containment: a crashing session loses its own task
			// (recorded failed in the ledger, never retried — a
			// deterministic panic would only repeat) but not the grid.
			if p := recover(); p != nil {
				failed[i] = fmt.Sprintf("panic: %v", p)
				perTask[i] = nil
				if led != nil {
					_ = led.AppendTaskFailed(journal.TaskFailed{Task: i, Reason: failed[i]})
				}
			}
		}()
		wls := grid[t.wname]
		store := memo.NewStore() // cold per repeat
		tn := cfg.buildTuner(t.tname, store)
		trials := 0
		for di := 0; di < 3; di++ {
			seed := cfg.Seed + uint64(t.rep)*1009 + uint64(di)*101 + hashName(t.wname+t.tname)
			ev := cfg.newEvaluator(wls[di], seed)
			var jn *journal.Journal
			if led != nil {
				var err error
				jn, err = journal.Open(sessionJournalPath(ledgerPath, i, di), journal.Meta{
					Seed:     seed,
					Budget:   cfg.Budget,
					Workload: t.wname,
					Dataset:  fmt.Sprintf("D%d", di+1),
					Tuner:    t.tname,
					Retries:  cfg.Retry.MaxRetries,
				}, journal.SyncAlways)
				if err != nil {
					// Environmental, not a session crash: no failed record,
					// so a corrected environment can still resume the task.
					failed[i] = fmt.Sprintf("journal: %v", err)
					perTask[i] = nil
					return
				}
			}
			res := tn.Run(tuners.NewSession(pool.Wrap(ev), space, tuners.Request{
				Budget:  cfg.Budget,
				Seed:    seed,
				Retry:   cfg.Retry,
				Journal: jn,
			}))
			if jn != nil {
				jn.Close()
			}
			trials += len(res.Trace)
			quality := 480.0
			if res.Found {
				// Quality measurement runs on the raw evaluator: it is
				// bookkeeping, not cluster load the campaign schedules.
				quality = ev.Measure(res.Best, cfg.MeasureReps, cfg.Seed*77+uint64(di))
			}
			perTask[i] = append(perTask[i], Session{
				Tuner:         t.tname,
				Workload:      t.wname,
				DatasetIdx:    di,
				Repeat:        t.rep,
				Quality:       quality,
				Found:         res.Found,
				SearchCost:    res.SearchCost,
				SelectionCost: res.SelectionCost,
				Trace:         res.Trace,
			})
		}
		if led != nil {
			payload, err := json.Marshal(perTask[i])
			if err != nil {
				payload = nil
			}
			_ = led.AppendTaskDone(journal.TaskDone{Task: i, Trials: trials, Result: payload})
		}
	})

	for i, ss := range perTask {
		comp.Sessions = append(comp.Sessions, ss...)
		if failed[i] != "" && info != nil {
			info.Failed = append(info.Failed, fmt.Sprintf("%s/%s/rep%d: %s",
				tasks[i].wname, tasks[i].tname, tasks[i].rep, failed[i]))
		}
	}
	return comp, info, nil
}

// sessionJournalPath derives a task's session-journal location from
// the ledger path; di < 0 returns the task-wide prefix recorded in the
// manifest.
func sessionJournalPath(ledgerPath string, task, di int) string {
	if di < 0 {
		return fmt.Sprintf("%s.t%02d", ledgerPath, task)
	}
	return fmt.Sprintf("%s.t%02d.d%d.jnl", ledgerPath, task, di)
}
