package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestClusterComparisonDeterministic: the scheduler grid is
// bit-reproducible for a fixed Config, every session runs its full
// budget through the backend seam, and the rendered table is clean.
func TestClusterComparisonDeterministic(t *testing.T) {
	cfg := Config{Seed: 5, Budget: 10, Repeats: 1, MeasureReps: 2, Fast: true}
	only := func(w string) bool { return w == "CIBuild" }

	a := RunClusterComparison(cfg, only)
	b := RunClusterComparison(cfg, only)

	if len(a.Workloads) != 1 || a.Workloads[0] != "CIBuild" {
		t.Fatalf("filtered families = %v", a.Workloads)
	}
	wantSessions := len(TunerNames) * 3 // 4 tuners x D1..D3
	if len(a.Sessions) != wantSessions {
		t.Fatalf("session count %d, want %d", len(a.Sessions), wantSessions)
	}
	if !reflect.DeepEqual(a.Sessions, b.Sessions) {
		t.Fatal("same Config not bit-reproducible across runs")
	}
	if !reflect.DeepEqual(a.Baseline, b.Baseline) {
		t.Fatalf("baselines differ: %v vs %v", a.Baseline, b.Baseline)
	}

	for key, base := range a.Baseline {
		if base <= 0 || math.IsNaN(base) {
			t.Errorf("baseline %s = %v", key, base)
		}
	}
	for _, s := range a.Sessions {
		if len(s.Trace) != cfg.Budget {
			t.Errorf("%s/%s/D%d: trace length %d, want the full budget %d",
				s.Tuner, s.Workload, s.DatasetIdx+1, len(s.Trace), cfg.Budget)
		}
		if !s.Found {
			t.Errorf("%s/%s/D%d: no completing policy found", s.Tuner, s.Workload, s.DatasetIdx+1)
		}
		if s.Quality <= 0 || s.Quality > a.Cap || math.IsNaN(s.Quality) {
			t.Errorf("%s/%s/D%d: quality %v outside (0, %v]",
				s.Tuner, s.Workload, s.DatasetIdx+1, s.Quality, a.Cap)
		}
	}

	out := RenderClusterComparison(a)
	if !strings.Contains(out, "CIBuild/D1") || !strings.Contains(out, "ROBOTune") {
		t.Errorf("render misses grid content:\n%s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("render contains NaN:\n%s", out)
	}
}
