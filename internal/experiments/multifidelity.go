package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/tuners"
)

// MultiFidelityRow is one workload's ROBOTune-vs-BOHB cost-to-quality
// comparison. ROBOTune tunes at full fidelity; BOHB climbs its
// fidelity ladder with cost-aware acquisition. The headline claim is a
// time-to-quality statement in the style of Table 2's
// iterations-to-within-X%: BOHB's incumbent reaches within 5% of
// ROBOTune's best-found execution time after spending at most half the
// simulated seconds ROBOTune's full-fidelity search consumed.
type MultiFidelityRow struct {
	Workload   string `json:"workload"`
	DatasetIdx int    `json:"dataset_idx"`
	// RoboBest / BOHBBest are each tuner's best full-fidelity completed
	// execution time; RoboCost / BOHBCost the total simulated seconds
	// each spent searching (sums over the session trace, so both sides
	// are in the same units; ROBOTune's one-time selection phase is
	// excluded, which only flatters the full-fidelity baseline).
	RoboBest  float64 `json:"robotune_best_s"`
	BOHBBest  float64 `json:"bohb_best_s"`
	RoboCost  float64 `json:"robotune_cost_s"`
	BOHBCost  float64 `json:"bohb_cost_s"`
	RoboEvals int     `json:"robotune_evals"`
	BOHBEvals int     `json:"bohb_evals"`
	// BOHBProxyEvals is how many of BOHB's trials ran at reduced
	// fidelity.
	BOHBProxyEvals int `json:"bohb_proxy_evals"`
	// Reached reports BOHB's incumbent ever coming within 5% of
	// RoboBest; CostToReach is the simulated seconds it had spent at
	// that point (including every proxy trial), and CostRatio is
	// CostToReach / RoboCost — the acceptance target is <= 0.5.
	Reached     bool    `json:"reached_within_5pct"`
	CostToReach float64 `json:"cost_to_reach_s"`
	CostRatio   float64 `json:"cost_ratio"`
	// Pass reports the row meeting the headline criterion.
	Pass bool `json:"pass"`
}

// MultiFidelityWorkloads is the default workload set for the
// comparison.
var MultiFidelityWorkloads = []string{"PageRank", "KMeans", "TeraSort"}

// mfAxis picks each workload's proxy axis. Iterative workloads
// (PageRank's rank sweeps, KMeans' passes) have a per-stage cost
// floor, so scaling input volumes barely cheapens them — but a prefix
// of their many similar stages is both cheap and rank-faithful.
// TeraSort is the opposite: few heavyweight stages (truncation saves
// almost nothing) whose cost tracks data volume nearly linearly.
func mfAxis(workload string) tuners.FidelityAxis {
	if workload == "TeraSort" {
		return tuners.AxisInput
	}
	return tuners.AxisStage
}

// buildBOHB constructs the multi-fidelity tuner at the configured
// scale: the default 1/9 → 1/3 → 1 ladder along the workload's proxy
// axis, cost-aware acquisition on, and the same reduced BO models
// ROBOTune uses under Fast.
func (c Config) buildBOHB(axis tuners.FidelityAxis) tuners.BOHB {
	bocfg := c.robotuneOptions().BO
	bocfg.CostAware = true
	bocfg.Workers = c.Workers
	ladder := []float64(nil)
	if axis == tuners.AxisStage {
		ladder = []float64{1.0 / 27, 1.0 / 9, 1.0 / 3, 1}
	}
	return tuners.BOHB{Axis: axis, Ladder: ladder, BO: bocfg}
}

// traceCost sums a session trace — the session's full spend in
// simulated seconds, capped and failed trials included.
func traceCost(trace []float64) float64 {
	var sum float64
	for _, v := range trace {
		if !math.IsInf(v, 0) && !math.IsNaN(v) {
			sum += v
		}
	}
	return sum
}

// costToWithin walks a session trace and returns the cumulative spend
// at the first full-fidelity completion at or below target, and
// whether one occurred. Proxy trials contribute spend but can never
// satisfy the target — their seconds measure a scaled-down workload.
func costToWithin(res tuners.Result, target float64) (float64, bool) {
	var spent float64
	for i, v := range res.Trace {
		if !math.IsInf(v, 0) && !math.IsNaN(v) {
			spent += v
		}
		proxy := i < len(res.Proxy) && res.Proxy[i]
		completed := i < len(res.Completed) && res.Completed[i]
		if completed && !proxy && v <= target {
			return spent, true
		}
	}
	return spent, false
}

// RunMultiFidelity runs the ROBOTune-vs-BOHB comparison on the named
// workloads' D1 datasets (nil = MultiFidelityWorkloads). Both tuners
// start from the same seed; BOHB gets three times the trial count
// because the criterion is stated in simulated seconds, not trials —
// most of its trials are fractional-cost proxies, and the row records
// what BOHB actually spent, which is what the gate checks (the pass
// bar is a prefix of BOHB's own spend, so extra trials cannot fake a
// pass).
func RunMultiFidelity(cfg Config, workloads []string) []MultiFidelityRow {
	cfg = cfg.withDefaults()
	if len(workloads) == 0 {
		workloads = MultiFidelityWorkloads
	}
	grid := sparkGrid()
	space := sparkSpace()

	rows := make([]MultiFidelityRow, 0, len(workloads))
	for _, wname := range workloads {
		wls, ok := grid[wname]
		if !ok {
			continue
		}
		const di = 0
		seed := cfg.Seed + uint64(di)*101 + hashName(wname+"multifidelity")

		roboEv := cfg.newEvaluator(wls[di], seed)
		robo := cfg.tune(core.New(memo.NewStore(), cfg.robotuneOptions()), roboEv, space, cfg.Budget, seed)

		bohbEv := cfg.newEvaluator(wls[di], seed)
		bohb := cfg.tune(cfg.buildBOHB(mfAxis(wname)), bohbEv, space, 3*cfg.Budget, seed)

		proxies := 0
		for _, p := range bohb.Proxy {
			if p {
				proxies++
			}
		}
		row := MultiFidelityRow{
			Workload:       wname,
			DatasetIdx:     di,
			RoboBest:       robo.BestSeconds,
			BOHBBest:       bohb.BestSeconds,
			RoboCost:       traceCost(robo.Trace),
			BOHBCost:       traceCost(bohb.Trace),
			RoboEvals:      robo.Evals,
			BOHBEvals:      bohb.Evals,
			BOHBProxyEvals: proxies,
		}
		if robo.Found {
			row.CostToReach, row.Reached = costToWithin(bohb, 1.05*robo.BestSeconds)
			if row.RoboCost > 0 {
				row.CostRatio = row.CostToReach / row.RoboCost
			}
			row.Pass = row.Reached && row.CostRatio <= 0.5
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderMultiFidelity prints the cost-to-quality comparison table.
func RenderMultiFidelity(rows []MultiFidelityRow) string {
	t := newTable(12, 10, 10, 10, 10, 11, 8, 6)
	t.row("workload", "RT best", "BOHB best", "RT cost", "BOHB cost", "reach cost", "ratio", "pass")
	t.line()
	for _, r := range rows {
		reach, pass := "never", "no"
		if r.Reached {
			reach = fmt.Sprintf("%.0fs", r.CostToReach)
		}
		if r.Pass {
			pass = "yes"
		}
		t.row(r.Workload,
			fmt.Sprintf("%.1fs", r.RoboBest),
			fmt.Sprintf("%.1fs", r.BOHBBest),
			fmt.Sprintf("%.0fs", r.RoboCost),
			fmt.Sprintf("%.0fs", r.BOHBCost),
			reach,
			fmt.Sprintf("%.3f", r.CostRatio),
			pass)
	}
	return "Multi-fidelity cost-to-quality — ROBOTune (full fidelity) vs BOHB (ladder + cost-aware EI)\n" +
		"target: reach within 5% of ROBOTune's best-found time at <= 50% of its simulated-seconds spend\n" + t.String()
}
