package experiments

import (
	"math"
	"strings"
	"testing"
)

// tinyConfig keeps experiment tests fast: small budgets, one repeat.
func tinyConfig() Config {
	return Config{Seed: 3, Budget: 30, Repeats: 1, MeasureReps: 2, Fast: true}
}

func onlyWorkload(name string) func(string) bool {
	return func(w string) bool { return w == name }
}

func TestRunComparisonShape(t *testing.T) {
	comp := RunComparison(tinyConfig(), onlyWorkload("TeraSort"))
	// 4 tuners x 1 workload x 3 datasets x 1 repeat.
	if len(comp.Sessions) != 12 {
		t.Fatalf("sessions = %d, want 12", len(comp.Sessions))
	}
	for _, s := range comp.Sessions {
		if s.Workload != "TeraSort" {
			t.Fatalf("unexpected workload %q", s.Workload)
		}
		if len(s.Trace) == 0 || len(s.Trace) > 30 {
			t.Errorf("%s D%d trace length %d", s.Tuner, s.DatasetIdx+1, len(s.Trace))
		}
		if s.SearchCost <= 0 {
			t.Errorf("%s D%d search cost %v", s.Tuner, s.DatasetIdx+1, s.SearchCost)
		}
		if s.Quality <= 0 || s.Quality > 480 {
			t.Errorf("%s D%d quality %v", s.Tuner, s.DatasetIdx+1, s.Quality)
		}
	}
}

func TestComparisonDeterministic(t *testing.T) {
	a := RunComparison(tinyConfig(), onlyWorkload("TeraSort"))
	b := RunComparison(tinyConfig(), onlyWorkload("TeraSort"))
	for i := range a.Sessions {
		if a.Sessions[i].Quality != b.Sessions[i].Quality ||
			a.Sessions[i].SearchCost != b.Sessions[i].SearchCost {
			t.Fatalf("session %d differs across identical runs", i)
		}
	}
}

// TestComparisonConcurrencyParity asserts the campaign scheduler's
// contract end to end: the full session list — order included — is
// bit-identical whether the grid runs serially or four tasks wide.
func TestComparisonConcurrencyParity(t *testing.T) {
	serial := RunComparison(tinyConfig(), onlyWorkload("KMeans"))
	wideCfg := tinyConfig()
	wideCfg.Concurrency = 4
	wide := RunComparison(wideCfg, onlyWorkload("KMeans"))

	if len(serial.Sessions) != len(wide.Sessions) {
		t.Fatalf("session count %d vs %d", len(serial.Sessions), len(wide.Sessions))
	}
	for i := range serial.Sessions {
		a, b := serial.Sessions[i], wide.Sessions[i]
		if a.Tuner != b.Tuner || a.Workload != b.Workload ||
			a.DatasetIdx != b.DatasetIdx || a.Repeat != b.Repeat {
			t.Fatalf("session %d identity differs: %+v vs %+v", i, a, b)
		}
		if a.Quality != b.Quality || a.Found != b.Found ||
			a.SearchCost != b.SearchCost || a.SelectionCost != b.SelectionCost {
			t.Fatalf("session %d numbers differ: %+v vs %+v", i, a, b)
		}
		if len(a.Trace) != len(b.Trace) {
			t.Fatalf("session %d trace length %d vs %d", i, len(a.Trace), len(b.Trace))
		}
		for j := range a.Trace {
			if a.Trace[j] != b.Trace[j] {
				t.Fatalf("session %d trace[%d] %v vs %v", i, j, a.Trace[j], b.Trace[j])
			}
		}
	}
}

func TestFig3Fig4Derivations(t *testing.T) {
	comp := RunComparison(tinyConfig(), onlyWorkload("KMeans"))
	f3 := comp.Fig3()
	if len(f3) != 3 {
		t.Fatalf("fig3 rows = %d, want 3 (D1-D3)", len(f3))
	}
	for _, r := range f3 {
		if v := r.Scaled["RandomSearch"]; math.Abs(v-1) > 1e-9 {
			t.Errorf("RS must scale to 1, got %v", v)
		}
		for _, tn := range TunerNames {
			if r.Scaled[tn] <= 0 || math.IsNaN(r.Scaled[tn]) {
				t.Errorf("%s scaled = %v", tn, r.Scaled[tn])
			}
		}
	}
	f4 := comp.Fig4()
	if len(f4) != 3 {
		t.Fatalf("fig4 rows = %d", len(f4))
	}
	// ROBOTune's guard and BO make its search cost lower than RS.
	var rt float64
	for _, r := range f4 {
		rt += r.Scaled["ROBOTune"]
	}
	if rt/3 >= 1 {
		t.Errorf("ROBOTune mean cost ratio %v, expected < 1", rt/3)
	}
	out := RenderScaled("t", f3)
	if !strings.Contains(out, "KM-D1") {
		t.Error("render missing row label")
	}
	mean, max := SummarizeScaled(f4, "RandomSearch")
	if mean <= 0 || max < mean {
		t.Errorf("summary mean=%v max=%v", mean, max)
	}
}

func TestFig5Derivation(t *testing.T) {
	comp := RunComparison(tinyConfig(), onlyWorkload("KMeans"))
	f5 := comp.Fig5("KMeans")
	for _, tn := range TunerNames {
		s := f5.Summary[tn]
		if s.N == 0 || s.P50 <= 0 {
			t.Errorf("%s summary: %+v", tn, s)
		}
		if s.P90 < s.P50 {
			t.Errorf("%s P90 < P50", tn)
		}
	}
	if out := f5.Render(); !strings.Contains(out, "Figure 5") {
		t.Error("render missing title")
	}
}

func TestTable2Derivation(t *testing.T) {
	comp := RunComparison(tinyConfig(), onlyWorkload("TeraSort"))
	rows := comp.Table2()
	if len(rows) != 1 {
		t.Fatalf("table2 rows = %d", len(rows))
	}
	r := rows[0]
	// Tighter targets cannot be reached earlier than looser ones.
	if r.Within1 < r.Within5 || r.Within5 < r.Within10 {
		t.Errorf("iteration ordering violated: %+v", r)
	}
	if r.Within10 < 1 || r.Within1 > 30 {
		t.Errorf("iterations out of range: %+v", r)
	}
	if out := RenderTable2(rows); !strings.Contains(out, "TeraSort") {
		t.Error("render missing workload")
	}
}

func TestFirstWithin(t *testing.T) {
	trace := []float64{100, 90, 80, 80, 70}
	if got := firstWithin(trace, 70, 0.01); got != 5 {
		t.Errorf("within 1%% = %d, want 5", got)
	}
	if got := firstWithin(trace, 70, 0.15); got != 3 {
		t.Errorf("within 15%% = %d, want 3 (80 <= 80.5)", got)
	}
	if got := firstWithin(trace, 70, 0.5); got != 1 {
		t.Errorf("within 50%% = %d, want 1", got)
	}
}

func TestFig6Derivation(t *testing.T) {
	comp := RunComparison(tinyConfig(), onlyWorkload("PageRank"))
	f6 := comp.Fig6("PageRank")
	for _, key := range []string{"D1", "D3"} {
		curves := f6.Curves[key]
		for _, tn := range TunerNames {
			c := curves[tn]
			if len(c) == 0 {
				t.Fatalf("%s %s: empty curve", key, tn)
			}
			for i := 1; i < len(c); i++ {
				if c[i] > c[i-1]+1e-9 {
					t.Fatalf("%s %s: running min increased at %d", key, tn, i)
				}
			}
		}
		if f6.IterWithin5[key] < 1 {
			t.Errorf("%s IterWithin5 = %v", key, f6.IterWithin5[key])
		}
	}
	if out := f6.Render("PageRank"); !strings.Contains(out, "PR-D1") {
		t.Error("render missing dataset")
	}
}

func TestFig2SmallScale(t *testing.T) {
	cfg := tinyConfig()
	res := Fig2ModelComparison(cfg, 60)
	if len(res.Labels) != 6 {
		t.Fatalf("labels = %v", res.Labels)
	}
	for _, label := range res.Labels {
		scores := res.Scores[label]
		for _, m := range Fig2Models {
			if _, ok := scores[m]; !ok {
				t.Fatalf("%s missing model %s", label, m)
			}
		}
		// The paper's finding: tree models beat linear models.
		tree := math.Max(scores["RandomForest"], scores["ExtraTrees"])
		linear := math.Max(scores["Lasso"], scores["ElasticNet"])
		if tree <= linear {
			t.Errorf("%s: tree R2 %.3f <= linear R2 %.3f", label, tree, linear)
		}
	}
	if out := res.Render(); !strings.Contains(out, "RandomForest") {
		t.Error("render missing model")
	}
}

func TestFig7SmallScale(t *testing.T) {
	cfg := tinyConfig()
	res := Fig7SelectionRecall(cfg, []int{80, 40, 20})
	if len(res.Recall) != 5 {
		t.Fatalf("recall workloads = %d", len(res.Recall))
	}
	for w, recs := range res.Recall {
		if len(recs) != 3 {
			t.Fatalf("%s: %d recall points", w, len(recs))
		}
		// Recall at the ground-truth count itself is exactly 1.
		if recs[0] != 1 {
			t.Errorf("%s: recall at truth count = %v", w, recs[0])
		}
		for _, r := range recs {
			if r < 0 || r > 1 {
				t.Errorf("%s: recall %v out of [0,1]", w, r)
			}
		}
	}
	if out := res.Render(); !strings.Contains(out, "Figure 7") {
		t.Error("render missing title")
	}
}

func TestFig8SmallScale(t *testing.T) {
	res := Fig8SamplingBehavior(tinyConfig())
	for _, tn := range TunerNames {
		pts := res.Points[tn]
		if len(pts) == 0 || len(pts) > 30 {
			t.Errorf("%s: %d points (budget 30)", tn, len(pts))
		}
		for _, p := range pts {
			if p[0] < 1 || p[0] > 32 {
				t.Errorf("%s: cores %v out of range", tn, p[0])
			}
			if p[1] < 1024 || p[1] > 184320 {
				t.Errorf("%s: memory %v out of range", tn, p[1])
			}
		}
	}
	if out := res.Render(); !strings.Contains(out, "ROBOTune") {
		t.Error("render missing tuner")
	}
}

func TestFig9SmallScale(t *testing.T) {
	res := Fig9ResponseSurface(tinyConfig(), []int{25, 30}, 6)
	if len(res.Surfaces) != 2 {
		t.Fatalf("surfaces = %d", len(res.Surfaces))
	}
	if !res.HasPlane {
		t.Skip("executor plane not selected in this tiny run")
	}
	for i, s := range res.Surfaces {
		if s == nil {
			continue
		}
		if len(s) != 6 || len(s[0]) != 6 {
			t.Fatalf("surface %d shape %dx%d", i, len(s), len(s[0]))
		}
		for _, row := range s {
			for _, v := range row {
				if math.IsNaN(v) || v <= 0 {
					t.Fatalf("surface value %v", v)
				}
			}
		}
	}
	if out := res.Render(); !strings.Contains(out, "Figure 9") {
		t.Error("render missing title")
	}
}

func TestDefaultComparisonSmallScale(t *testing.T) {
	rows := DefaultComparison(tinyConfig())
	if len(rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(rows))
	}
	byKey := map[string]DefaultRow{}
	for _, r := range rows {
		byKey[ShortName[r.Workload]+string(rune('1'+r.DatasetIdx))] = r
	}
	// §5.2: default OOMs PR and CC; TS D2/D3 error; KM slow but runs.
	for _, k := range []string{"P1", "P2", "P3", "C1", "C2", "C3"} {
		_ = k
	}
	for _, r := range rows {
		switch r.Workload {
		case "PageRank", "ConnectedComponents":
			if !r.DefaultFails {
				t.Errorf("%s-D%d default should fail", r.Workload, r.DatasetIdx+1)
			}
		case "KMeans":
			if r.DefaultFails {
				t.Errorf("KMeans default should complete")
			}
			if !math.IsNaN(r.Speedup) && r.Speedup < 3 {
				t.Errorf("KMeans speedup %v, want large", r.Speedup)
			}
		case "TeraSort":
			wantFail := r.DatasetIdx >= 1
			if r.DefaultFails != wantFail {
				t.Errorf("TS-D%d default fails=%v want %v", r.DatasetIdx+1, r.DefaultFails, wantFail)
			}
		}
	}
	if out := RenderDefault(rows); !strings.Contains(out, "FAILS") {
		t.Error("render missing failure marker")
	}
}

func TestHashNameStable(t *testing.T) {
	if hashName("PageRank") != hashName("PageRank") {
		t.Error("hash not stable")
	}
	if hashName("PageRank") == hashName("KMeans") {
		t.Error("suspicious hash collision")
	}
}

func TestCSVExports(t *testing.T) {
	comp := RunComparison(tinyConfig(), onlyWorkload("TeraSort"))

	var sb strings.Builder
	if err := comp.WriteSessionsCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+12 { // header + 4 tuners x 3 datasets
		t.Fatalf("sessions CSV rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "tuner,workload,dataset") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(sb.String(), "ROBOTune,TeraSort,D1") {
		t.Error("missing expected row")
	}

	sb.Reset()
	if err := WriteScaledCSV(&sb, comp.Fig3()); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+3 {
		t.Fatalf("scaled CSV rows = %d", len(lines))
	}
	if !strings.Contains(lines[1], "TS,D1") {
		t.Errorf("row = %q", lines[1])
	}

	sb.Reset()
	if err := comp.WriteTracesCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(sb.String()), "\n")
	// header + sum of all traces (12 sessions x <=30 evals).
	if len(lines) < 100 || len(lines) > 1+12*30 {
		t.Fatalf("traces CSV rows = %d", len(lines))
	}
}

func TestExtendedComparison(t *testing.T) {
	rows, comp := ExtendedComparison(tinyConfig(), []string{"TeraSort"})
	if len(rows) != len(ExtendedTunerNames) {
		t.Fatalf("rows = %d, want %d", len(rows), len(ExtendedTunerNames))
	}
	byName := map[string]ExtendedRow{}
	for _, r := range rows {
		byName[r.Tuner] = r
		if r.MeanQuality <= 0 || r.MeanCost <= 0 || r.CostPerEval <= 0 {
			t.Errorf("%s: non-positive metrics %+v", r.Tuner, r)
		}
	}
	if math.Abs(byName["RandomSearch"].MeanQuality-1) > 1e-9 {
		t.Errorf("RS quality must scale to 1, got %v", byName["RandomSearch"].MeanQuality)
	}
	// SHA's early-kill schedule must be cheaper per evaluation than RS.
	if byName["SuccessiveHalving"].CostPerEval >= byName["RandomSearch"].CostPerEval {
		t.Errorf("SHA per-eval cost %v >= RS %v",
			byName["SuccessiveHalving"].CostPerEval, byName["RandomSearch"].CostPerEval)
	}
	// 6 tuners x 1 workload x 2 datasets x 1 repeat.
	if len(comp.Sessions) != 12 {
		t.Errorf("sessions = %d", len(comp.Sessions))
	}
	if out := RenderExtended(rows); !strings.Contains(out, "CMAES") {
		t.Error("render missing tuner")
	}
}

func TestAblationsSmallScale(t *testing.T) {
	cfg := tinyConfig()
	cfg.Budget = 60 // ablations halve it
	res := Ablations(cfg)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Metric <= 0 || math.IsNaN(r.Metric) || r.Baseline <= 0 || math.IsNaN(r.Baseline) {
			t.Errorf("%s: bad values %+v", r.Name, r)
		}
	}
	// The guard must not increase cost, and selection must not lose
	// badly to raw 44-dim BO.
	for _, r := range res.Rows {
		switch r.Name {
		case "guard on vs off":
			if r.Metric > r.Baseline*1.05 {
				t.Errorf("guard increased cost: %+v", r)
			}
		case "RF selection vs raw 44-dim BO":
			if r.Metric > r.Baseline*1.3 {
				t.Errorf("selection much worse than raw BO: %+v", r)
			}
		}
	}
	if out := res.Render(); !strings.Contains(out, "GP-Hedge") {
		t.Error("render missing rows")
	}
}

func TestMappingExperiment(t *testing.T) {
	cfg := tinyConfig()
	rows := MappingExperiment(cfg)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]MappingRow{}
	for _, r := range rows {
		byName[r.Workload] = r
		if r.Quality <= 0 || r.BaselineQuality <= 0 {
			t.Errorf("%s: bad qualities %+v", r.Workload, r)
		}
	}
	// The PageRank lookalike must map and spend only probes.
	look := byName["WebGraphRank"]
	if !look.Mapped {
		t.Errorf("lookalike did not map: %+v", look)
	}
	if look.SelectionEvals >= look.BaselineSelectionEvals {
		t.Errorf("mapping did not save selection evals: %d vs %d",
			look.SelectionEvals, look.BaselineSelectionEvals)
	}
	if look.MatchedTo != "PageRank" {
		t.Errorf("lookalike matched to %q, want PageRank", look.MatchedTo)
	}
	if out := RenderMapping(rows); !strings.Contains(out, "WebGraphRank") {
		t.Error("render missing workload")
	}
}

func TestAmortizationExperiment(t *testing.T) {
	rows := AmortizationExperiment(tinyConfig(), "KMeans")
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Datasets != i+1 {
			t.Errorf("row %d datasets = %d", i, r.Datasets)
		}
		for _, tn := range TunerNames {
			if r.Total[tn] <= 0 {
				t.Errorf("row %d %s total %v", i, tn, r.Total[tn])
			}
		}
		// Cumulative totals are non-decreasing.
		if i > 0 {
			for _, tn := range TunerNames {
				if r.Total[tn] < rows[i-1].Total[tn] {
					t.Errorf("%s cumulative cost decreased", tn)
				}
			}
		}
	}
	// ROBOTune's marginal cost shrinks after session 1: the D2+D3
	// increment must be below its D1 total (selection only paid once).
	rt1 := rows[0].Total["ROBOTune"]
	rtInc := rows[2].Total["ROBOTune"] - rt1
	if rtInc >= rt1 {
		t.Errorf("ROBOTune D2+D3 increment %v not below D1 total %v (selection re-paid?)", rtInc, rt1)
	}
	if out := RenderAmortization("KMeans", rows); !strings.Contains(out, "amortization") {
		t.Error("render missing title")
	}
	if AmortizationExperiment(tinyConfig(), "Nope") != nil {
		t.Error("unknown workload should return nil")
	}
}
