// Package experiments regenerates every table and figure of the
// paper's evaluation (§5) on the simulated cluster. Each experiment
// is a pure function of its Config (seeded, deterministic) returning
// a structured result with a Render method that prints the same rows
// or series the paper reports.
//
// Experiment index (see DESIGN.md):
//
//	Fig2ModelComparison      — Figure 2: R² of Lasso/ElasticNet/RF/ET
//	RunComparison            — shared 4-tuner × 5-workload × 3-dataset grid
//	  .Fig3 / .Fig4 / .Fig5 / .Table2 / .Fig6 — Figures 3-6, Table 2
//	Fig7SelectionRecall      — Figure 7: recall vs selection samples
//	Fig8SamplingBehavior     — Figure 8: cores-vs-memory sampling scatter
//	Fig9ResponseSurface      — Figure 9: GP response surface over iterations
//	DefaultComparison        — §5.2: speedups over the Spark default
package experiments

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"repro/internal/backend"
	"repro/internal/bo"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/forest"
	"repro/internal/memo"
	"repro/internal/sample"
	"repro/internal/tuners"
)

// Config controls experiment scale. The zero value selects the
// paper's settings where affordable and a reduced-but-faithful scale
// otherwise; Full() selects the paper's exact scale.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// Budget is the tuning budget in evaluations (paper: 100).
	Budget int
	// Repeats is the number of tuning sessions per dataset per tuner
	// (paper: 5).
	Repeats int
	// MeasureReps is how many fresh runs average the quality of each
	// final configuration.
	MeasureReps int
	// Fast reduces model sizes (forest trees, BO restarts) to keep
	// wall-clock low; the algorithms are unchanged.
	Fast bool
	// Workers is ROBOTune's compute parallelism (0 = GOMAXPROCS,
	// 1 = serial). Results are identical for any value.
	Workers int
	// Faults injects cluster misbehavior into every tuning evaluator
	// (off when zero). Quality measurement stays fault-free, so tuners
	// are still compared on the configurations' true execution times.
	Faults backend.FaultPlan
	// Retry bounds re-evaluation of transiently-failed configurations
	// per session.
	Retry tuners.RetryPolicy
	// Concurrency is the campaign width: how many (workload, tuner,
	// repeat) tuning tasks run at once, and the capacity of the shared
	// evaluation pool they are scheduled over (<= 1 = serial). Results
	// are identical for any value — the scheduler only changes
	// wall-clock, never outcomes.
	Concurrency int
}

// Defaults returns the reduced scale used by the benchmarks: the
// paper's budget with a single repeat per dataset.
func Defaults() Config {
	return Config{Seed: 1, Budget: 100, Repeats: 1, MeasureReps: 3, Fast: true}
}

// Full returns the paper's evaluation scale (§5.1: budget 100, five
// repeats per dataset).
func Full() Config {
	return Config{Seed: 1, Budget: 100, Repeats: 5, MeasureReps: 5, Fast: false}
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = 100
	}
	if c.Repeats <= 0 {
		c.Repeats = 1
	}
	if c.MeasureReps <= 0 {
		c.MeasureReps = 3
	}
	return c
}

// robotuneOptions builds the core.Options for the configured scale.
func (c Config) robotuneOptions() core.Options {
	o := core.Options{Workers: c.Workers}
	if c.Fast {
		o.GenericSamples = 100
		o.PermuteRepeats = 4
		o.Forest = forest.RFDefaults()
		o.Forest.Trees = 60
		o.BO = bo.DefaultConfig()
		o.BO.CandidatePool = 128
		o.BO.Starts = 1
		o.BO.GP.Restarts = 1
	}
	return o
}

// newEvaluator builds a tuning evaluator carrying the configured
// fault plan.
func (c Config) newEvaluator(w backend.Workload, seed uint64) sparkEval {
	return newSparkEval(w, seed, c.Faults)
}

// tune runs one tuning session under the configured retry policy. A
// zero policy reproduces the plain Tune path exactly.
func (c Config) tune(tn tuners.SessionTuner, obj tuners.Objective, space *conf.Space, budget int, seed uint64) tuners.Result {
	return tn.Run(tuners.NewSession(obj, space, tuners.Request{
		Budget: budget,
		Seed:   seed,
		Retry:  c.Retry,
	}))
}

// WorkloadOrder is the fixed report order for the five workloads
// (Table 1).
var WorkloadOrder = []string{
	"PageRank", "KMeans", "ConnectedComponents", "LogisticRegression", "TeraSort",
}

// ShortName maps workload families to the paper's abbreviations.
var ShortName = map[string]string{
	"PageRank":            "PR",
	"KMeans":              "KM",
	"ConnectedComponents": "CC",
	"LogisticRegression":  "LR",
	"TeraSort":            "TS",
}

// TunerNames is the fixed report order for the four tuners.
var TunerNames = []string{"ROBOTune", "BestConfig", "Gunther", "RandomSearch"}

// Session is one tuning session's outcome.
type Session struct {
	Tuner      string
	Workload   string
	DatasetIdx int // 0..2 → D1..D3
	Repeat     int
	// Quality is the measured execution time of the tuner's final
	// configuration (averaged over fresh runs with shared seeds, so
	// tuners are compared on identical noise).
	Quality float64
	// Found is false when the tuner produced no completing config.
	Found bool
	// SearchCost is the total evaluation seconds of the tuning phase
	// (§5.3 excludes ROBOTune's one-time parameter selection).
	SearchCost float64
	// SelectionCost is ROBOTune's one-time selection cost (0 on cache
	// hits and for baselines).
	SelectionCost float64
	// Trace is the observed objective value of every tuning-phase
	// evaluation in order.
	Trace []float64
}

// Comparison holds the shared tuner grid all of Figures 3-6 and
// Table 2 derive from.
type Comparison struct {
	Config   Config
	Sessions []Session
}

// buildTuner constructs a fresh tuner by name; ROBOTune receives the
// given store so sessions within one repeat share memoization.
func (c Config) buildTuner(name string, store *memo.Store) tuners.SessionTuner {
	switch name {
	case "ROBOTune":
		return core.New(store, c.robotuneOptions())
	case "BestConfig":
		return tuners.BestConfig{}
	case "Gunther":
		return tuners.Gunther{}
	case "RandomSearch":
		return tuners.RandomSearch{}
	}
	panic("experiments: unknown tuner " + name)
}

// RunComparison executes the §5 evaluation grid: every tuner tunes
// every workload's three datasets, Repeats times. Within one repeat,
// ROBOTune tunes D1 → D2 → D3 in order with a shared memoization
// store, reproducing the paper's repeated-workload setup; every
// repeat starts cold. The filter (nil = all) restricts workload
// families by name.
//
// The grid runs as a campaign on the schedule package: each
// (workload, tuner, repeat) triple is one task, and up to
// cfg.Concurrency of them tune at once over a shared evaluation pool
// of the same size. Every task owns its evaluators and its tuner, so
// concurrency changes only wall-clock — the sessions, their order in
// the result, and every number in them are bit-identical for any
// Concurrency (the tests assert 1 vs N equality).
//
// RunComparison is the non-durable form of RunComparisonDurable: same
// grid, same results, no ledger or journals on disk.
func RunComparison(cfg Config, filter func(workload string) bool) *Comparison {
	comp, _, _ := RunComparisonDurable(cfg, filter, "") // error-free without a ledger
	return comp
}

// pick returns sessions matching the given tuner/workload/dataset
// (dataset -1 matches all).
func (c *Comparison) pick(tuner, workload string, dataset int) []Session {
	var out []Session
	for _, s := range c.Sessions {
		if s.Tuner == tuner && s.Workload == workload && (dataset < 0 || s.DatasetIdx == dataset) {
			out = append(out, s)
		}
	}
	return out
}

func meanOf(ss []Session, f func(Session) float64) float64 {
	if len(ss) == 0 {
		return 0
	}
	var sum float64
	for _, s := range ss {
		sum += f(s)
	}
	return sum / float64(len(ss))
}

// hashName gives a stable small hash for seed derivation.
func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h % 997
}

// table is a tiny fixed-width table renderer.
type table struct {
	sb     strings.Builder
	widths []int
}

func newTable(widths ...int) *table { return &table{widths: widths} }

func (t *table) row(label string, cells ...string) {
	cells = append([]string{label}, cells...)
	for i, c := range cells {
		w := 12
		if i < len(t.widths) {
			w = t.widths[i]
		}
		if i == 0 {
			fmt.Fprintf(&t.sb, "%-*s", w, c)
		} else {
			fmt.Fprintf(&t.sb, " %*s", w, c)
		}
	}
	t.sb.WriteByte('\n')
}

func (t *table) line() {
	total := 0
	for _, w := range t.widths {
		total += w + 1
	}
	t.sb.WriteString(strings.Repeat("-", total))
	t.sb.WriteByte('\n')
}

func (t *table) String() string { return t.sb.String() }

// seededRNG is a tiny indirection so experiment files avoid importing
// the sample package just for RNG construction.
func seededRNG(seed uint64) *rand.Rand { return sample.NewRNG(seed) }
