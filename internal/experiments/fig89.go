package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/memo"
)

// Fig8Result holds Figure 8: every configuration each tuner sampled
// during one PR-D3 session, projected onto the
// spark.executor.(cores, memory) plane.
type Fig8Result struct {
	// Points[tuner] lists (cores, memoryMB) pairs in evaluation order.
	Points map[string][][2]float64
}

// Fig8SamplingBehavior reproduces Figure 8 by running one tuning
// session per tuner on PageRank-D3 and recording the sampled
// executor-core/memory coordinates. ROBOTune should show dense
// clusters (exploitation) plus scattered probes (exploration); the
// baselines scatter without a pattern.
func Fig8SamplingBehavior(cfg Config) Fig8Result {
	cfg = cfg.withDefaults()
	space := sparkSpace()
	grid := sparkGrid()
	w := grid["PageRank"][2]

	out := Fig8Result{Points: map[string][][2]float64{}}
	for _, tname := range TunerNames {
		store := memo.NewStore()
		tn := cfg.buildTuner(tname, store)
		if rt, ok := tn.(*core.ROBOTune); ok {
			// The paper's PR-D3 session happens in the repeated-
			// workload setting: selection ran on earlier datasets,
			// where most samples complete under the 480 s cap and the
			// importance signal is clean. Reproduce that by tuning
			// PR-D1 first against a separate evaluator (its cost is
			// not plotted), then widen the selection floor so the
			// plotted executor plane is in the subspace.
			opts := cfg.robotuneOptions()
			opts.MinSelected = 10
			*rt = *core.New(store, opts)
			warm := newSparkEval(grid["PageRank"][0], cfg.Seed+3, backend.FaultPlan{})
			rt.Tune(warm, space, cfg.Budget/2, cfg.Seed+3)
		}
		ev := &recordingEvaluator{sparkEval: newSparkEval(w, cfg.Seed+7, backend.FaultPlan{})}
		tn.Tune(ev, space, cfg.Budget, cfg.Seed+7)
		pts := ev.points
		// ROBOTune's one-time selection samples precede the tuning
		// session; Figure 8 plots the tuning session only.
		if len(pts) > cfg.Budget {
			pts = pts[len(pts)-cfg.Budget:]
		}
		out.Points[tname] = pts
	}
	return out
}

// recordingEvaluator wraps the evaluator and records the cores/memory
// plane coordinates of every evaluated configuration. With evaluation
// collapsed to the single EvaluateSpec entry point, one override
// observes every sample the session routes to the backend.
type recordingEvaluator struct {
	sparkEval
	points [][2]float64
}

func (r *recordingEvaluator) EvaluateSpec(c conf.Config, spec backend.EvalSpec) backend.EvalRecord {
	r.points = append(r.points, [2]float64{
		float64(c.Int(conf.ExecutorCores)),
		float64(c.Int(conf.ExecutorMemory)),
	})
	return r.sparkEval.EvaluateSpec(c, spec)
}

// Render prints each tuner's sampling density as an ASCII grid over
// the cores-vs-memory plane (columns: cores 1-32; rows: memory,
// log-scaled 8-180 GB), mirroring the scatter plots of Figure 8.
func (f Fig8Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 8 — sampling behavior in the cores-vs-memory plane\n")
	const cols, rowsN = 16, 8
	for _, tn := range TunerNames {
		pts := f.Points[tn]
		grid := make([][]int, rowsN)
		for i := range grid {
			grid[i] = make([]int, cols)
		}
		for _, p := range pts {
			cx := int((p[0] - 1) / 32 * cols)
			if cx >= cols {
				cx = cols - 1
			}
			logLo, logHi := math.Log(8192.0), math.Log(184320.0)
			ry := int((math.Log(p[1]) - logLo) / (logHi - logLo) * rowsN)
			if ry < 0 {
				ry = 0
			}
			if ry >= rowsN {
				ry = rowsN - 1
			}
			grid[rowsN-1-ry][cx]++
		}
		fmt.Fprintf(&sb, "\n%s (%d samples; rows: memory 180G→8G, cols: cores 1→32)\n", tn, len(pts))
		for _, row := range grid {
			for _, v := range row {
				switch {
				case v == 0:
					sb.WriteString(" .")
				case v < 3:
					fmt.Fprintf(&sb, " %d", v)
				default:
					sb.WriteString(" #")
				}
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Fig9Result holds Figure 9: the GP's perceived response surface over
// the cores-vs-memory plane at successive tuning iterations.
type Fig9Result struct {
	// Iterations lists the snapshot points (paper: 25, 50, 100).
	Iterations []int
	// Surfaces[i] is a grid of posterior-mean predicted execution
	// times; Surfaces[i][r][c] indexes memory row r (high→low) and
	// cores column c (low→high).
	Surfaces [][][]float64
	// HasPlane is false when the tuned subspace lacks either executor
	// parameter (the surface is then empty).
	HasPlane bool
}

// Fig9ResponseSurface reproduces Figure 9: ROBOTune tunes PR-D3 with
// increasing budgets (same seed, so runs share their prefix), and
// after each run the GP posterior mean is evaluated over a grid of
// the executor cores/memory plane, with other selected parameters
// fixed at the incumbent. Lighter (lower) values spreading over a
// region while points concentrate there is the paper's
// exploitation-with-exploration picture.
func Fig9ResponseSurface(cfg Config, iterations []int, gridSize int) Fig9Result {
	cfg = cfg.withDefaults()
	if len(iterations) == 0 {
		iterations = []int{25, 50, 100}
	}
	if gridSize <= 0 {
		gridSize = 12
	}
	space := sparkSpace()
	grid := sparkGrid()
	w := grid["PageRank"][2]

	out := Fig9Result{Iterations: iterations}
	for _, iters := range iterations {
		store := memo.NewStore()
		opts := cfg.robotuneOptions()
		// Keep the executor plane in the subspace and run selection
		// on D1 where the importance signal is clean (see Fig8).
		opts.MinSelected = 10
		rt := core.New(store, opts)
		warm := newSparkEval(grid["PageRank"][0], cfg.Seed+3, backend.FaultPlan{})
		rt.Tune(warm, space, cfg.Budget/2, cfg.Seed+3)
		ev := newSparkEval(w, cfg.Seed+9, backend.FaultPlan{})
		res := rt.Tune(ev, space, iters, cfg.Seed+9)

		ss := rt.LastSubspace
		engine := rt.LastEngine
		names := ss.Names()
		ci, mi := -1, -1
		for i, n := range names {
			switch n {
			case conf.ExecutorCores:
				ci = i
			case conf.ExecutorMemory:
				mi = i
			}
		}
		if ci < 0 || mi < 0 || !res.Found {
			out.Surfaces = append(out.Surfaces, nil)
			continue
		}
		out.HasPlane = true
		g, err := engine.Surrogate()
		if err != nil {
			out.Surfaces = append(out.Surfaces, nil)
			continue
		}
		base := ss.Encode(res.Best)
		surface := make([][]float64, gridSize)
		for r := 0; r < gridSize; r++ {
			surface[r] = make([]float64, gridSize)
			for c := 0; c < gridSize; c++ {
				u := append([]float64(nil), base...)
				u[ci] = (float64(c) + 0.5) / float64(gridSize)
				// Row 0 = high memory.
				u[mi] = 1 - (float64(r)+0.5)/float64(gridSize)
				// The engine models log execution time; report
				// seconds.
				mu, _ := g.Predict(u)
				surface[r][c] = math.Exp(mu)
			}
		}
		out.Surfaces = append(out.Surfaces, surface)
	}
	return out
}

// Render prints Figure 9 as shaded ASCII grids (darker = slower).
func (f Fig9Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 9 — GP response surface over cores (→) vs memory (↑ high to low)\n")
	shades := []byte(" .:-=+*#%@")
	for i, iters := range f.Iterations {
		surface := f.Surfaces[i]
		fmt.Fprintf(&sb, "\niteration %d:\n", iters)
		if surface == nil {
			sb.WriteString("  (executor plane not in selected subspace)\n")
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, row := range surface {
			for _, v := range row {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		span := hi - lo
		if span <= 0 {
			span = 1
		}
		for _, row := range surface {
			sb.WriteString("  ")
			for _, v := range row {
				idx := int((v - lo) / span * float64(len(shades)-1))
				sb.WriteByte(shades[idx])
				sb.WriteByte(shades[idx])
			}
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "  range: %.0fs (light) .. %.0fs (dark)\n", lo, hi)
	}
	return sb.String()
}
