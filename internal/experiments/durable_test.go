package experiments

import (
	"testing"
)

func sameSessions(t *testing.T, label string, got, want []Session) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d sessions vs %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Tuner != w.Tuner || g.Workload != w.Workload || g.DatasetIdx != w.DatasetIdx || g.Repeat != w.Repeat {
			t.Fatalf("%s: session %d identity %+v vs %+v", label, i, g, w)
		}
		if g.Quality != w.Quality || g.Found != w.Found ||
			g.SearchCost != w.SearchCost || g.SelectionCost != w.SelectionCost {
			t.Fatalf("%s: session %d numbers differ: %+v vs %+v", label, i, g, w)
		}
		if len(g.Trace) != len(w.Trace) {
			t.Fatalf("%s: session %d trace %d vs %d", label, i, len(g.Trace), len(w.Trace))
		}
		for j := range g.Trace {
			if g.Trace[j] != w.Trace[j] {
				t.Fatalf("%s: session %d trace[%d] %v vs %v", label, i, j, g.Trace[j], w.Trace[j])
			}
		}
	}
}

// TestDurableComparisonMatchesPlain: running the grid with a campaign
// ledger produces exactly the sessions the plain path produces, and a
// second run against the completed ledger reuses every task — zero
// re-tuning — with bit-identical numbers.
func TestDurableComparisonMatchesPlain(t *testing.T) {
	cfg := tinyConfig()
	cfg.Budget = 20
	plain := RunComparison(cfg, onlyWorkload("TeraSort"))

	lgr := t.TempDir() + "/grid.lgr"
	fresh, info, err := RunComparisonDurable(cfg, onlyWorkload("TeraSort"), lgr)
	if err != nil {
		t.Fatal(err)
	}
	if info.Resumed || info.Reused != 0 || len(info.Failed) != 0 {
		t.Fatalf("fresh durable run reported %+v", info)
	}
	sameSessions(t, "durable vs plain", fresh.Sessions, plain.Sessions)

	resumed, info2, err := RunComparisonDurable(cfg, onlyWorkload("TeraSort"), lgr)
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Resumed {
		t.Fatal("second run did not see the ledger")
	}
	// 4 tuners x 1 workload x 1 repeat = 4 tasks, all settled.
	if info2.Reused != 4 {
		t.Fatalf("reused %d tasks, want 4", info2.Reused)
	}
	sameSessions(t, "ledger-settled vs plain", resumed.Sessions, plain.Sessions)
}

// TestDurableComparisonRejectsChangedGrid: resuming a ledger with a
// different result-affecting configuration must fail fast instead of
// stitching incompatible halves.
func TestDurableComparisonRejectsChangedGrid(t *testing.T) {
	cfg := tinyConfig()
	cfg.Budget = 15
	lgr := t.TempDir() + "/grid.lgr"
	if _, _, err := RunComparisonDurable(cfg, onlyWorkload("KMeans"), lgr); err != nil {
		t.Fatal(err)
	}
	cfg.Budget = 16
	if _, _, err := RunComparisonDurable(cfg, onlyWorkload("KMeans"), lgr); err == nil {
		t.Fatal("budget change accepted against an existing ledger")
	}
	cfg.Budget = 15
	if _, _, err := RunComparisonDurable(cfg, onlyWorkload("TeraSort"), lgr); err == nil {
		t.Fatal("workload-set change accepted against an existing ledger")
	}
}
