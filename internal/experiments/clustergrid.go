package experiments

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/memo"
)

// This file is the second backend's evaluation grid: the same four
// tuners that compete on the Spark simulator tune the cluster
// scheduler's placement policy instead. Everything goes through the
// backend seam — the grid resolves "clustersim" in the registry and
// never names a simulator type, so it doubles as a living check that
// the tuner stack is genuinely backend-agnostic.

// ClusterComparison holds the scheduler-policy tuning grid: every
// tuner tunes every workload family's three traces (D1..D3), Repeats
// times.
type ClusterComparison struct {
	Config Config
	// Workloads is the family report order, taken from the backend's
	// own catalog (optionally filtered).
	Workloads []string
	// Cap is the backend's default per-evaluation cap; sessions that
	// find nothing report it as their quality.
	Cap      float64
	Sessions []Session
	// Baseline maps "family/Dx" to the objective of the space's
	// default configuration, measured with the same shared seeds as
	// the tuned configurations — so "gain over default" compares like
	// with like.
	Baseline map[string]float64
}

// clusterBackend returns the registered cluster-scheduler backend.
func clusterBackend() backend.Backend {
	b, err := backend.Lookup("clustersim")
	if err != nil {
		panic(fmt.Sprintf("experiments: clustersim backend not registered: %v", err))
	}
	return b
}

// RunClusterComparison executes the grid. The filter (nil = all)
// restricts workload families by name. The run is serial and
// bit-reproducible for a fixed Config.
func RunClusterComparison(cfg Config, filter func(workload string) bool) *ClusterComparison {
	cfg = cfg.withDefaults()
	bk := clusterBackend()
	space := bk.Space()
	out := &ClusterComparison{
		Config:   cfg,
		Cap:      bk.DefaultCap(),
		Baseline: map[string]float64{},
	}
	for _, name := range bk.Workloads() {
		if filter == nil || filter(name) {
			out.Workloads = append(out.Workloads, name)
		}
	}

	workload := func(name string, di int) backend.Workload {
		w, err := bk.Workload(name, di)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		return w
	}
	newEval := func(w backend.Workload, seed uint64) backend.Evaluator {
		ev, err := bk.NewEvaluator(w, seed, out.Cap, cfg.Faults)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		return ev
	}
	measure := func(ev backend.Evaluator, c conf.Config, seed uint64) float64 {
		m, ok := ev.(backend.Measurer)
		if !ok {
			panic(fmt.Sprintf("experiments: %T lacks the Measure capability the grid needs", ev))
		}
		return m.Measure(c, cfg.MeasureReps, seed)
	}

	// Baseline: the space default under measurement seeds shared with
	// the tuned configurations (fault-free, like Spark's quality
	// measurement).
	def := space.Default()
	for _, wname := range out.Workloads {
		for di := 0; di < 3; di++ {
			ev := newEval(workload(wname, di), cfg.Seed+hashName(wname)+uint64(di))
			out.Baseline[fmt.Sprintf("%s/D%d", wname, di+1)] =
				measure(ev, def, cfg.Seed*77+uint64(di))
		}
	}

	for rep := 0; rep < cfg.Repeats; rep++ {
		for _, wname := range out.Workloads {
			for _, tname := range TunerNames {
				// Like the Spark grid, ROBOTune tunes D1 → D2 → D3 with a
				// shared memoization store; every repeat starts cold.
				store := memo.NewStore()
				tn := cfg.buildTuner(tname, store)
				for di := 0; di < 3; di++ {
					seed := cfg.Seed + uint64(rep)*1009 + uint64(di)*101 + hashName(wname+tname+"cluster")
					ev := newEval(workload(wname, di), seed)
					res := cfg.tune(tn, ev, space, cfg.Budget, seed)
					quality := out.Cap
					if res.Found {
						quality = measure(ev, res.Best, cfg.Seed*77+uint64(di))
					}
					out.Sessions = append(out.Sessions, Session{
						Tuner:         tname,
						Workload:      wname,
						DatasetIdx:    di,
						Repeat:        rep,
						Quality:       quality,
						Found:         res.Found,
						SearchCost:    res.SearchCost,
						SelectionCost: res.SelectionCost,
						Trace:         res.Trace,
					})
				}
			}
		}
	}
	return out
}

// pick mirrors Comparison.pick for the scheduler grid.
func (c *ClusterComparison) pick(tuner, workload string, dataset int) []Session {
	var out []Session
	for _, s := range c.Sessions {
		if s.Tuner == tuner && s.Workload == workload && (dataset < 0 || s.DatasetIdx == dataset) {
			out = append(out, s)
		}
	}
	return out
}

// GainOverDefault returns the mean relative improvement of a tuner's
// final policy over the default configuration across the whole grid
// (0.25 = the tuned policy's objective is 25% below the default's).
func (c *ClusterComparison) GainOverDefault(tuner string) float64 {
	var sum float64
	var n int
	for _, wname := range c.Workloads {
		for di := 0; di < 3; di++ {
			base := c.Baseline[fmt.Sprintf("%s/D%d", wname, di+1)]
			if base <= 0 {
				continue
			}
			q := meanOf(c.pick(tuner, wname, di), func(s Session) float64 { return s.Quality })
			if q == 0 {
				continue
			}
			sum += (base - q) / base
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RenderClusterComparison formats the grid: per workload trace the
// default policy's objective, every tuner's mean tuned objective, and
// ROBOTune's gain over the default.
func RenderClusterComparison(c *ClusterComparison) string {
	t := newTable(16, 9, 9, 9, 9, 9, 8)
	t.sb.WriteString("Scheduler-policy tuning (clustersim backend) — objective seconds of the final policy, lower is better\n")
	cells := []string{"default"}
	cells = append(cells, TunerNames...)
	cells = append(cells, "RT gain")
	t.row("workload", cells...)
	t.line()
	for _, wname := range c.Workloads {
		for di := 0; di < 3; di++ {
			key := fmt.Sprintf("%s/D%d", wname, di+1)
			base := c.Baseline[key]
			row := []string{fmt.Sprintf("%.1f", base)}
			var rt float64
			for _, tn := range TunerNames {
				q := meanOf(c.pick(tn, wname, di), func(s Session) float64 { return s.Quality })
				if tn == "ROBOTune" {
					rt = q
				}
				row = append(row, fmt.Sprintf("%.1f", q))
			}
			gain := "-"
			if base > 0 && rt > 0 {
				gain = fmt.Sprintf("%.1f%%", 100*(base-rt)/base)
			}
			t.row(key, append(row, gain)...)
		}
	}
	t.line()
	t.row("mean RT gain over default", fmt.Sprintf("%.1f%%", 100*c.GainOverDefault("ROBOTune")))
	return t.String()
}
