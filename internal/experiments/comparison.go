package experiments

import (
	"fmt"
	"math"

	"repro/internal/conf"
	"repro/internal/stats"
)

func sparkSpace() *conf.Space { return conf.SparkSpace() }

// Fig3Row is one bar group of Figure 3: per workload/dataset, each
// tuner's best execution time scaled to Random Search (lower is
// better; < 1 beats RS).
type Fig3Row struct {
	Workload   string
	DatasetIdx int
	// Scaled maps tuner name → mean quality / RS mean quality.
	Scaled map[string]float64
}

// Fig3 computes Figure 3 (execution time of suggested configurations
// scaled to Random Search).
func (c *Comparison) Fig3() []Fig3Row {
	var rows []Fig3Row
	for _, w := range WorkloadOrder {
		for di := 0; di < 3; di++ {
			rs := meanOf(c.pick("RandomSearch", w, di), func(s Session) float64 { return s.Quality })
			if rs == 0 {
				continue
			}
			row := Fig3Row{Workload: w, DatasetIdx: di, Scaled: map[string]float64{}}
			for _, tn := range TunerNames {
				q := meanOf(c.pick(tn, w, di), func(s Session) float64 { return s.Quality })
				row.Scaled[tn] = q / rs
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// Fig4 computes Figure 4 (search cost scaled to Random Search).
// Following §5.3, ROBOTune's one-time parameter-selection cost is
// excluded (it is reported separately by SelectionCost).
func (c *Comparison) Fig4() []Fig3Row {
	var rows []Fig3Row
	for _, w := range WorkloadOrder {
		for di := 0; di < 3; di++ {
			rs := meanOf(c.pick("RandomSearch", w, di), func(s Session) float64 { return s.SearchCost })
			if rs == 0 {
				continue
			}
			row := Fig3Row{Workload: w, DatasetIdx: di, Scaled: map[string]float64{}}
			for _, tn := range TunerNames {
				cost := meanOf(c.pick(tn, w, di), func(s Session) float64 { return s.SearchCost })
				row.Scaled[tn] = cost / rs
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// RenderScaled prints Figure 3/4-style rows.
func RenderScaled(title string, rows []Fig3Row) string {
	t := newTable(8, 10, 10, 10, 12)
	t.row("", TunerNames...)
	t.line()
	for _, r := range rows {
		cells := make([]string, len(TunerNames))
		for i, tn := range TunerNames {
			cells[i] = fmt.Sprintf("%.3f", r.Scaled[tn])
		}
		t.row(fmt.Sprintf("%s-D%d", ShortName[r.Workload], r.DatasetIdx+1), cells...)
	}
	return title + "\n" + t.String()
}

// SummarizeScaled returns mean and max advantage of ROBOTune over the
// named tuner across rows (the paper's headline "1.14x on average and
// up to 1.3x" style numbers). For Figure 3/4 semantics (lower is
// better), advantage = other / ROBOTune.
func SummarizeScaled(rows []Fig3Row, other string) (mean, max float64) {
	var sum float64
	n := 0
	for _, r := range rows {
		rt := r.Scaled["ROBOTune"]
		if rt <= 0 {
			continue
		}
		adv := r.Scaled[other] / rt
		sum += adv
		if adv > max {
			max = adv
		}
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), max
}

// Fig5Stats holds Figure 5's distribution comparison for one
// workload: each tuner's sampled-configuration execution times.
type Fig5Stats struct {
	Workload string
	// Summary maps tuner → descriptive statistics of all evaluated
	// configurations across datasets and repeats.
	Summary map[string]stats.Summary
}

// Fig5 computes the execution-time distribution of sampled
// configurations (Figure 5; the paper plots PR and KM).
func (c *Comparison) Fig5(workload string) Fig5Stats {
	out := Fig5Stats{Workload: workload, Summary: map[string]stats.Summary{}}
	for _, tn := range TunerNames {
		var all []float64
		for _, s := range c.pick(tn, workload, -1) {
			all = append(all, s.Trace...)
		}
		out.Summary[tn] = stats.Summarize(all)
	}
	return out
}

// Render prints the Figure 5 distribution table with the paper's
// median and P90 ratios versus ROBOTune.
func (f Fig5Stats) Render() string {
	t := newTable(14, 8, 8, 8, 8, 8, 10, 10)
	t.row("tuner", "p25", "p50", "p75", "p90", "p99", "p50/RT", "p90/RT")
	t.line()
	rt := f.Summary["ROBOTune"]
	for _, tn := range TunerNames {
		s := f.Summary[tn]
		t.row(tn,
			fmt.Sprintf("%.0f", s.P25), fmt.Sprintf("%.0f", s.P50),
			fmt.Sprintf("%.0f", s.P75), fmt.Sprintf("%.0f", s.P90),
			fmt.Sprintf("%.0f", s.P99),
			fmt.Sprintf("%.2fx", s.P50/rt.P50), fmt.Sprintf("%.2fx", s.P90/rt.P90))
	}
	return fmt.Sprintf("Figure 5 — execution time distribution of sampled configurations (%s)\n%s",
		ShortName[f.Workload], t.String())
}

// Table2Row is one row of Table 2: the average iteration at which
// ROBOTune first reaches within the given percentage of its best
// achieved time.
type Table2Row struct {
	Workload                   string
	Within1, Within5, Within10 float64
}

// Table2 computes the search-speed table from ROBOTune's traces.
func (c *Comparison) Table2() []Table2Row {
	var rows []Table2Row
	for _, w := range WorkloadOrder {
		ss := c.pick("ROBOTune", w, -1)
		if len(ss) == 0 {
			continue
		}
		var i1, i5, i10 float64
		for _, s := range ss {
			best := stats.Min(s.Trace)
			i1 += float64(firstWithin(s.Trace, best, 0.01))
			i5 += float64(firstWithin(s.Trace, best, 0.05))
			i10 += float64(firstWithin(s.Trace, best, 0.10))
		}
		n := float64(len(ss))
		rows = append(rows, Table2Row{Workload: w, Within1: i1 / n, Within5: i5 / n, Within10: i10 / n})
	}
	return rows
}

// firstWithin returns the 1-based iteration at which the running
// minimum of trace first comes within frac of best.
func firstWithin(trace []float64, best, frac float64) int {
	threshold := best * (1 + frac)
	for i, v := range trace {
		if v <= threshold {
			return i + 1
		}
	}
	return len(trace)
}

// RenderTable2 prints Table 2.
func RenderTable2(rows []Table2Row) string {
	t := newTable(22, 10, 10, 10)
	t.row("Workload", "Within 1%", "Within 5%", "Within 10%")
	t.line()
	for _, r := range rows {
		t.row(r.Workload,
			fmt.Sprintf("%.0f", r.Within1),
			fmt.Sprintf("%.0f", r.Within5),
			fmt.Sprintf("%.0f", r.Within10))
	}
	return "Table 2 — avg. iterations to reach within x% of best achieved time\n" + t.String()
}

// Fig6Curves holds Figure 6: the running-minimum execution time per
// iteration for PageRank D1 (no memoized configs available) and D3
// (memoized configs from D1/D2 sessions), for every tuner.
type Fig6Curves struct {
	// Curves[dataset][tuner] is the mean running minimum at each
	// iteration; dataset keys are "D1" and "D3".
	Curves map[string]map[string][]float64
	// IterWithin5 maps dataset → ROBOTune's mean first iteration
	// within 5% of its final minimum (the paper quotes 58 for PR-D1
	// vs 21 for PR-D3).
	IterWithin5 map[string]float64
}

// Fig6 computes the memoization search-speed curves for the given
// workload (the paper uses PageRank).
func (c *Comparison) Fig6(workload string) Fig6Curves {
	out := Fig6Curves{
		Curves:      map[string]map[string][]float64{},
		IterWithin5: map[string]float64{},
	}
	for _, ds := range []struct {
		key string
		idx int
	}{{"D1", 0}, {"D3", 2}} {
		byTuner := map[string][]float64{}
		for _, tn := range TunerNames {
			ss := c.pick(tn, workload, ds.idx)
			if len(ss) == 0 {
				continue
			}
			maxLen := 0
			for _, s := range ss {
				if len(s.Trace) > maxLen {
					maxLen = len(s.Trace)
				}
			}
			mean := make([]float64, maxLen)
			for i := 0; i < maxLen; i++ {
				var sum float64
				var n int
				for _, s := range ss {
					if i < len(s.Trace) {
						sum += runningMin(s.Trace, i)
						n++
					}
				}
				mean[i] = sum / float64(n)
			}
			byTuner[tn] = mean
		}
		out.Curves[ds.key] = byTuner

		var acc float64
		ss := c.pick("ROBOTune", workload, ds.idx)
		for _, s := range ss {
			best := stats.Min(s.Trace)
			acc += float64(firstWithin(s.Trace, best, 0.05))
		}
		if len(ss) > 0 {
			out.IterWithin5[ds.key] = acc / float64(len(ss))
		}
	}
	return out
}

func runningMin(trace []float64, upto int) float64 {
	m := math.Inf(1)
	for i := 0; i <= upto && i < len(trace); i++ {
		if trace[i] < m {
			m = trace[i]
		}
	}
	return m
}

// Render prints Figure 6 as a sampled series (every 10th iteration).
func (f Fig6Curves) Render(workload string) string {
	var out string
	for _, key := range []string{"D1", "D3"} {
		t := newTable(14, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7)
		hdr := []string{"iter:10", "20", "30", "40", "50", "60", "70", "80", "90", "100"}
		t.row("tuner", hdr...)
		t.line()
		for _, tn := range TunerNames {
			curve := f.Curves[key][tn]
			cells := make([]string, 10)
			for k := 0; k < 10; k++ {
				idx := (k+1)*10 - 1
				if idx < len(curve) {
					cells[k] = fmt.Sprintf("%.0f", curve[idx])
				} else if len(curve) > 0 {
					cells[k] = fmt.Sprintf("%.0f", curve[len(curve)-1])
				} else {
					cells[k] = "-"
				}
			}
			t.row(tn, cells...)
		}
		out += fmt.Sprintf("Figure 6 — min execution time per iteration, %s-%s (ROBOTune within 5%% at iter %.0f)\n%s\n",
			ShortName[workload], key, f.IterWithin5[key], t.String())
	}
	return out
}
