// Package gp implements Gaussian-Process regression, the surrogate
// model of ROBOTune's Bayesian-Optimization engine (§3.4). Following
// §4, the covariance is the sum of a Matérn 5/2 kernel and a white
// noise kernel (observation noise assumed i.i.d. Gaussian), and
// hyperparameters are chosen by maximizing the log marginal
// likelihood. Targets are normalized internally, so hyperparameter
// bounds are scale-free.
package gp

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/optimize"
	"repro/internal/sample"
	"repro/internal/stats"
)

// KernelKind selects the covariance family.
type KernelKind int

const (
	// Matern52 is the Matérn ν=5/2 kernel preferred for practical
	// functions (§4, citing CherryPick and Snoek et al.).
	Matern52 KernelKind = iota
	// RBF is the squared-exponential kernel, retained for ablations.
	RBF
)

// Params are kernel hyperparameters in log space.
type Params struct {
	LogVariance float64 // signal variance σ_f²
	LogLength   float64 // isotropic length scale ℓ
	// LogLengths, when non-empty, gives per-dimension length scales
	// (ARD — automatic relevance determination) and overrides
	// LogLength. Inert dimensions get long scales, letting the GP
	// ignore them.
	LogLengths []float64
	LogNoise   float64 // white-noise variance σ_n²
}

// Equal reports parameter equality (Params contains a slice, so ==
// is unavailable).
func (p Params) Equal(q Params) bool {
	if p.LogVariance != q.LogVariance || p.LogLength != q.LogLength || p.LogNoise != q.LogNoise {
		return false
	}
	if len(p.LogLengths) != len(q.LogLengths) {
		return false
	}
	for i := range p.LogLengths {
		if p.LogLengths[i] != q.LogLengths[i] {
			return false
		}
	}
	return true
}

// Config controls GP fitting.
type Config struct {
	Kernel KernelKind
	// ARD fits a separate length scale per input dimension instead of
	// one isotropic scale. More hyperparameters to optimize (slower
	// fits), but anisotropic objectives — where some selected
	// parameters matter far more than others — are modeled better.
	ARD bool
	// FitHyper enables marginal-likelihood hyperparameter search
	// (multistart Nelder-Mead); when false, Init is used as-is.
	FitHyper bool
	// Init seeds the hyperparameter search.
	Init Params
	// Restarts is the number of random restarts for the search
	// (default 4).
	Restarts int
	// Seed drives the restart sampling.
	Seed uint64
	// Workers runs the hyperparameter multistart on this many
	// goroutines (<= 0 selects GOMAXPROCS); results are bit-identical
	// for any worker count.
	Workers int
}

// DefaultConfig returns the fitting configuration used by the BO
// engine.
func DefaultConfig() Config {
	return Config{
		Kernel:   Matern52,
		FitHyper: true,
		Init:     Params{LogVariance: 0, LogLength: math.Log(0.5), LogNoise: math.Log(1e-3)},
		Restarts: 4,
	}
}

// GP is a fitted Gaussian-Process posterior.
type GP struct {
	cfg    Config
	params Params
	x      [][]float64
	yNorm  []float64
	yMean  float64
	yStd   float64
	chol   *linalg.Matrix
	alpha  []float64
	lml    float64
}

// Fit trains a GP on x (rows = points) and y. It returns an error if
// the kernel matrix cannot be factorized even with jitter.
func Fit(x [][]float64, y []float64, cfg Config) (*GP, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("gp: bad training shape: %d points, %d targets", n, len(y))
	}
	d := len(x[0])
	for i, r := range x {
		if len(r) != d {
			return nil, fmt.Errorf("gp: ragged row %d", i)
		}
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 4
	}

	g := &GP{cfg: cfg, x: x}
	g.yMean = stats.Mean(y)
	g.yStd = stats.StdDev(y)
	if g.yStd < 1e-12 {
		g.yStd = 1
	}
	g.yNorm = make([]float64, n)
	for i, v := range y {
		g.yNorm[i] = (v - g.yMean) / g.yStd
	}

	if cfg.FitHyper {
		g.params = g.optimizeHyper(cfg)
	} else {
		g.params = cfg.Init
	}
	if err := g.factorize(g.params); err != nil {
		return nil, err
	}
	return g, nil
}

// hyperBounds are log-space search boxes for (variance, length,
// noise) on normalized targets in the unit cube.
var hyperBounds = optimize.Bounds{
	Lo: []float64{math.Log(1e-2), math.Log(5e-2), math.Log(1e-7)},
	Hi: []float64{math.Log(1e2), math.Log(1e1), math.Log(1e0)},
}

func (g *GP) optimizeHyper(cfg Config) Params {
	d := len(g.x[0])
	nLen := 1
	if cfg.ARD {
		nLen = d
	}
	unpack := func(v []float64) Params {
		p := Params{LogVariance: v[0], LogNoise: v[1+nLen]}
		if cfg.ARD {
			p.LogLengths = append([]float64(nil), v[1:1+nLen]...)
		} else {
			p.LogLength = v[1]
		}
		return p
	}
	obj := func(v []float64) float64 {
		lml, err := g.logMarginal(unpack(v))
		if err != nil || math.IsNaN(lml) {
			return 1e10
		}
		return -lml
	}
	bounds := optimize.Bounds{
		Lo: make([]float64, 2+nLen),
		Hi: make([]float64, 2+nLen),
	}
	bounds.Lo[0], bounds.Hi[0] = hyperBounds.Lo[0], hyperBounds.Hi[0]
	for i := 0; i < nLen; i++ {
		bounds.Lo[1+i], bounds.Hi[1+i] = hyperBounds.Lo[1], hyperBounds.Hi[1]
	}
	bounds.Lo[1+nLen], bounds.Hi[1+nLen] = hyperBounds.Lo[2], hyperBounds.Hi[2]

	seed := make([]float64, 2+nLen)
	seed[0] = cfg.Init.LogVariance
	for i := 0; i < nLen; i++ {
		seed[1+i] = cfg.Init.LogLength
		if len(cfg.Init.LogLengths) == nLen {
			seed[1+i] = cfg.Init.LogLengths[i]
		}
	}
	seed[1+nLen] = cfg.Init.LogNoise

	rng := sample.NewRNG(cfg.Seed ^ 0x5ca1ab1e)
	budget := 250 + 60*nLen
	res := optimize.Multistart(obj, bounds, cfg.Restarts, [][]float64{seed}, rng, cfg.Workers,
		func(f optimize.Objective, x0 []float64, b optimize.Bounds) optimize.Result {
			return optimize.NelderMead(f, x0, b, budget)
		})
	return unpack(res.X)
}

// kernel evaluates the covariance between two points (without the
// white-noise term, which only applies on the diagonal).
func (g *GP) kernel(p Params, a, b []float64) float64 {
	variance := math.Exp(p.LogVariance)
	var r float64
	if len(p.LogLengths) > 0 {
		var sq float64
		for i := range a {
			d := (a[i] - b[i]) / math.Exp(p.LogLengths[i])
			sq += d * d
		}
		r = math.Sqrt(sq)
	} else {
		length := math.Exp(p.LogLength)
		var sq float64
		for i := range a {
			d := a[i] - b[i]
			sq += d * d
		}
		r = math.Sqrt(sq) / length
	}
	switch g.cfg.Kernel {
	case RBF:
		return variance * math.Exp(-0.5*r*r)
	default: // Matern52
		s5 := math.Sqrt(5) * r
		return variance * (1 + s5 + 5*r*r/3) * math.Exp(-s5)
	}
}

func (g *GP) kernelMatrix(p Params) *linalg.Matrix {
	n := len(g.x)
	noise := math.Exp(p.LogNoise)
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.kernel(p, g.x[i], g.x[j])
			if i == j {
				v += noise
			}
			k.Set(i, j, v)
		}
	}
	linalg.SymmetricFromUpper(k)
	return k
}

// logMarginal computes the log marginal likelihood for hyperparams p.
func (g *GP) logMarginal(p Params) (float64, error) {
	k := g.kernelMatrix(p)
	l, _, err := linalg.Cholesky(k, 1e-10, 8)
	if err != nil {
		return math.Inf(-1), err
	}
	alpha := linalg.CholSolve(l, g.yNorm)
	n := float64(len(g.yNorm))
	return -0.5*linalg.Dot(g.yNorm, alpha) - 0.5*linalg.LogDetFromChol(l) - 0.5*n*math.Log(2*math.Pi), nil
}

// factorize caches the Cholesky factor and weight vector for p.
func (g *GP) factorize(p Params) error {
	k := g.kernelMatrix(p)
	l, _, err := linalg.Cholesky(k, 1e-10, 8)
	if err != nil {
		return fmt.Errorf("gp: kernel matrix not PD: %w", err)
	}
	g.chol = l
	g.alpha = linalg.CholSolve(l, g.yNorm)
	lml, _ := g.logMarginal(p)
	g.lml = lml
	return nil
}

// Predict returns the posterior mean and variance of the latent
// function at x, in the original target scale.
func (g *GP) Predict(x []float64) (mu, variance float64) {
	n := len(g.x)
	ks := make([]float64, n)
	for i := 0; i < n; i++ {
		ks[i] = g.kernel(g.params, g.x[i], x)
	}
	muN := linalg.Dot(ks, g.alpha)
	v := linalg.SolveLower(g.chol, ks)
	varN := g.kernel(g.params, x, x) - linalg.Dot(v, v)
	if varN < 0 {
		varN = 0
	}
	return muN*g.yStd + g.yMean, varN * g.yStd * g.yStd
}

// PredictWithNoise adds the fitted observation-noise variance, giving
// the predictive distribution of a new observation.
func (g *GP) PredictWithNoise(x []float64) (mu, variance float64) {
	mu, v := g.Predict(x)
	return mu, v + math.Exp(g.params.LogNoise)*g.yStd*g.yStd
}

// Params returns the fitted hyperparameters (log space).
func (g *GP) Params() Params { return g.params }

// LogMarginalLikelihood returns the fitted model's LML (normalized
// target scale).
func (g *GP) LogMarginalLikelihood() float64 { return g.lml }

// N returns the number of training points.
func (g *GP) N() int { return len(g.x) }

// Dim returns the input dimensionality.
func (g *GP) Dim() int {
	if len(g.x) == 0 {
		return 0
	}
	return len(g.x[0])
}
