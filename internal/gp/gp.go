// Package gp implements Gaussian-Process regression, the surrogate
// model of ROBOTune's Bayesian-Optimization engine (§3.4). Following
// §4, the covariance is the sum of a Matérn 5/2 kernel and a white
// noise kernel (observation noise assumed i.i.d. Gaussian), and
// hyperparameters are chosen by maximizing the log marginal
// likelihood. Targets are normalized internally, so hyperparameter
// bounds are scale-free.
//
// The fit is the BO engine's per-iteration bottleneck, so the package
// keeps a fast path through the likelihood search: squared pairwise
// differences are precomputed once per Fit (they depend only on the
// data, not the hyperparameters), length-scale and variance
// exponentials are hoisted out of the per-pair kernel loops, and the
// kernel/Cholesky/solve buffers are pooled across the hundreds of
// likelihood evaluations a multistart performs. Posterior updates
// that keep the hyperparameters fixed can extend a cached Cholesky
// factor in O(n²) via Extend instead of refitting in O(n³).
package gp

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/linalg"
	"repro/internal/optimize"
	"repro/internal/par"
	"repro/internal/sample"
	"repro/internal/stats"
)

// KernelKind selects the covariance family.
type KernelKind int

const (
	// Matern52 is the Matérn ν=5/2 kernel preferred for practical
	// functions (§4, citing CherryPick and Snoek et al.).
	Matern52 KernelKind = iota
	// RBF is the squared-exponential kernel, retained for ablations.
	RBF
)

// Params are kernel hyperparameters in log space.
type Params struct {
	LogVariance float64 // signal variance σ_f²
	LogLength   float64 // isotropic length scale ℓ
	// LogLengths, when non-empty, gives per-dimension length scales
	// (ARD — automatic relevance determination) and overrides
	// LogLength. Inert dimensions get long scales, letting the GP
	// ignore them.
	LogLengths []float64
	LogNoise   float64 // white-noise variance σ_n²
}

// Equal reports parameter equality (Params contains a slice, so ==
// is unavailable).
func (p Params) Equal(q Params) bool {
	if p.LogVariance != q.LogVariance || p.LogLength != q.LogLength || p.LogNoise != q.LogNoise {
		return false
	}
	if len(p.LogLengths) != len(q.LogLengths) {
		return false
	}
	for i := range p.LogLengths {
		if p.LogLengths[i] != q.LogLengths[i] {
			return false
		}
	}
	return true
}

// resolved caches the exponentials of one Params value so the per-pair
// kernel loops never call math.Exp: the signal variance, the noise
// variance, the isotropic length scale, and for ARD the per-dimension
// inverse squared length scales.
type resolved struct {
	variance float64   // exp(LogVariance)
	noise    float64   // exp(LogNoise)
	length   float64   // exp(LogLength); isotropic path only
	weights  []float64 // 1/exp(LogLengths[i])² per dimension; nil = isotropic
}

// resolveInto hoists p's exponentials, reusing buf for the ARD weights
// when it has capacity.
func resolveInto(p Params, buf []float64) resolved {
	rk := resolved{variance: math.Exp(p.LogVariance), noise: math.Exp(p.LogNoise)}
	if len(p.LogLengths) > 0 {
		if cap(buf) < len(p.LogLengths) {
			buf = make([]float64, len(p.LogLengths))
		}
		buf = buf[:len(p.LogLengths)]
		for i, ll := range p.LogLengths {
			il := 1 / math.Exp(ll)
			buf[i] = il * il
		}
		rk.weights = buf
	} else {
		rk.length = math.Exp(p.LogLength)
	}
	return rk
}

// Config controls GP fitting.
type Config struct {
	Kernel KernelKind
	// ARD fits a separate length scale per input dimension instead of
	// one isotropic scale. More hyperparameters to optimize (slower
	// fits), but anisotropic objectives — where some selected
	// parameters matter far more than others — are modeled better.
	ARD bool
	// FitHyper enables marginal-likelihood hyperparameter search
	// (multistart Nelder-Mead); when false, Init is used as-is.
	FitHyper bool
	// Init seeds the hyperparameter search.
	Init Params
	// Restarts is the number of random restarts for the search
	// (default 4).
	Restarts int
	// Seed drives the restart sampling.
	Seed uint64
	// Workers runs the hyperparameter multistart on this many
	// goroutines (<= 0 selects GOMAXPROCS); results are bit-identical
	// for any worker count.
	Workers int
	// SparseThreshold, when > 0, switches Fit to a local-subset sparse
	// approximation once the training set exceeds it: the exact GP is
	// built on the SparseSubset observations nearest the incumbent
	// (lowest target, distance in the normalized config space) plus a
	// uniform reservoir of the rest, bounding fit and predict cost by
	// the subset size. 0 (the default) keeps the exact GP at every
	// size, bit-identical to the pre-sparse implementation.
	SparseThreshold int
	// SparseSubset is the active-set size the sparse path targets
	// (default: SparseThreshold).
	SparseSubset int
}

// DefaultConfig returns the fitting configuration used by the BO
// engine.
func DefaultConfig() Config {
	return Config{
		Kernel:   Matern52,
		FitHyper: true,
		Init:     Params{LogVariance: 0, LogLength: math.Log(0.5), LogNoise: math.Log(1e-3)},
		Restarts: 4,
	}
}

// GP is a fitted Gaussian-Process posterior. A fitted GP is immutable:
// Predict, PredictInto and Extend never modify the receiver, so a
// value may be shared across goroutines and forked engines.
type GP struct {
	cfg    Config
	params Params
	rk     resolved
	x      [][]float64
	yNorm  []float64
	yMean  float64
	yStd   float64
	chol   *linalg.Matrix
	jitter float64
	alpha  []float64
	lml    float64
	// jitterTries counts how many escalating-jitter retries the final
	// factorization needed (0 = clean Cholesky). The BO engine
	// accumulates it across fits as a numerical-health signal.
	jitterTries int
	// Sparse-path bookkeeping: when activeIdx is non-nil the GP was
	// fitted on the active subset x = fullX[activeIdx], and fullX/fullY
	// retain the complete training set so Extend can keep appending and
	// the next Fit can re-select.
	fullX     [][]float64
	fullY     []float64
	activeIdx []int
}

// sparseSubset picks the active set for the local-subset sparse path:
// the ~¾k observations nearest the incumbent (lowest target; squared
// Euclidean distance in input space, index as the deterministic
// tie-break) plus a uniform reservoir of ~¼k drawn from the remainder
// so the model keeps global coverage. Indices are returned ascending,
// preserving chronological order for Extend's append semantics.
func sparseSubset(x [][]float64, y []float64, k int, seed uint64) []int {
	n := len(x)
	if k >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	inc := 0
	for i := 1; i < n; i++ {
		if y[i] < y[inc] {
			inc = i
		}
	}
	d2 := make([]float64, n)
	xi := x[inc]
	for i, r := range x {
		var s float64
		for j := range r {
			dv := r[j] - xi[j]
			s += dv * dv
		}
		d2[i] = s
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if d2[order[a]] != d2[order[b]] {
			return d2[order[a]] < d2[order[b]]
		}
		return order[a] < order[b]
	})
	kRes := k / 4
	kNear := k - kRes
	chosen := make(map[int]bool, k)
	for _, i := range order[:kNear] {
		chosen[i] = true
	}
	// Uniform reservoir over the non-near remainder (Algorithm R),
	// seeded deterministically so the same data always selects the
	// same subset.
	rng := sample.NewRNG(seed ^ 0x5ab5e7)
	reservoir := make([]int, 0, kRes)
	seen := 0
	for _, i := range order[kNear:] {
		seen++
		if len(reservoir) < kRes {
			reservoir = append(reservoir, i)
		} else if j := rng.IntN(seen); j < kRes {
			reservoir[j] = i
		}
	}
	for _, i := range reservoir {
		chosen[i] = true
	}
	idx := make([]int, 0, len(chosen))
	for i := range chosen {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// Fit trains a GP on x (rows = points) and y. It returns an error if
// the kernel matrix cannot be factorized even with jitter. When
// cfg.SparseThreshold > 0 and the training set is larger, the GP is
// fitted exactly on the local subset chosen by sparseSubset; below
// the threshold (or with it unset) the path is the exact GP,
// bit-identical to the pre-sparse implementation.
func Fit(x [][]float64, y []float64, cfg Config) (*GP, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("gp: bad training shape: %d points, %d targets", n, len(y))
	}
	d := len(x[0])
	for i, r := range x {
		if len(r) != d {
			return nil, fmt.Errorf("gp: ragged row %d", i)
		}
	}
	for i, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("gp: non-finite target y[%d] = %v", i, v)
		}
	}
	if cfg.SparseThreshold > 0 && n > cfg.SparseThreshold {
		k := cfg.SparseSubset
		if k <= 0 {
			k = cfg.SparseThreshold
		}
		idx := sparseSubset(x, y, k, cfg.Seed)
		sx := make([][]float64, len(idx))
		sy := make([]float64, len(idx))
		for i, j := range idx {
			sx[i] = x[j]
			sy[i] = y[j]
		}
		sub := cfg
		sub.SparseThreshold = 0
		g, err := Fit(sx, sy, sub)
		if err != nil {
			return nil, err
		}
		g.cfg = cfg
		g.fullX = x
		g.fullY = y
		g.activeIdx = idx
		return g, nil
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 4
	}

	g := &GP{cfg: cfg, x: x}
	g.yMean = stats.Mean(y)
	g.yStd = stats.StdDev(y)
	if g.yStd < 1e-12 {
		g.yStd = 1
	}
	g.yNorm = make([]float64, n)
	for i, v := range y {
		g.yNorm[i] = (v - g.yMean) / g.yStd
	}

	// The squared-difference cache depends only on the data, so one
	// build serves every likelihood evaluation of the hyperparameter
	// search and the final factorization. Its shape follows the
	// parameter shape actually evaluated: the search's (cfg.ARD) when
	// fitting, Init's when the hyperparameters are fixed.
	ard := cfg.ARD
	if !cfg.FitHyper {
		ard = len(cfg.Init.LogLengths) > 0
	}
	cache := newDistCache(x, ard)

	if cfg.FitHyper {
		g.params = g.optimizeHyper(cfg, cache)
	} else {
		g.params = cfg.Init
	}
	if err := g.factorize(g.params, cache); err != nil {
		return nil, err
	}
	return g, nil
}

// hyperBounds are log-space search boxes for (variance, length,
// noise) on normalized targets in the unit cube.
var hyperBounds = optimize.Bounds{
	Lo: []float64{math.Log(1e-2), math.Log(5e-2), math.Log(1e-7)},
	Hi: []float64{math.Log(1e2), math.Log(1e1), math.Log(1e0)},
}

// lmlScratch is one worker's reusable buffers for likelihood
// evaluations: kernel matrix, Cholesky factor, solve vector, and the
// unpacked/resolved hyperparameter slices.
type lmlScratch struct {
	k       *linalg.Matrix
	chol    *linalg.Matrix
	v       []float64
	weights []float64
	logLens []float64
}

func (g *GP) optimizeHyper(cfg Config, cache *distCache) Params {
	d := len(g.x[0])
	nLen := 1
	if cfg.ARD {
		nLen = d
	}
	unpack := func(v []float64) Params {
		p := Params{LogVariance: v[0], LogNoise: v[1+nLen]}
		if cfg.ARD {
			p.LogLengths = append([]float64(nil), v[1:1+nLen]...)
		} else {
			p.LogLength = v[1]
		}
		return p
	}
	// The multistart evaluates the objective concurrently, so each
	// in-flight evaluation borrows a scratch set from a pool instead
	// of allocating kernel and factor matrices afresh (the naive path
	// allocates ~3 n×n matrices per evaluation, hundreds of times per
	// fit).
	pool := sync.Pool{New: func() any { return &lmlScratch{} }}
	obj := func(v []float64) float64 {
		s := pool.Get().(*lmlScratch)
		p := Params{LogVariance: v[0], LogNoise: v[1+nLen]}
		if cfg.ARD {
			if cap(s.logLens) < nLen {
				s.logLens = make([]float64, nLen)
			}
			p.LogLengths = s.logLens[:nLen]
			copy(p.LogLengths, v[1:1+nLen])
		} else {
			p.LogLength = v[1]
		}
		lml, ok := g.logMarginalCached(p, cache, s)
		pool.Put(s)
		if !ok || math.IsNaN(lml) {
			return 1e10
		}
		return -lml
	}
	bounds := optimize.Bounds{
		Lo: make([]float64, 2+nLen),
		Hi: make([]float64, 2+nLen),
	}
	bounds.Lo[0], bounds.Hi[0] = hyperBounds.Lo[0], hyperBounds.Hi[0]
	for i := 0; i < nLen; i++ {
		bounds.Lo[1+i], bounds.Hi[1+i] = hyperBounds.Lo[1], hyperBounds.Hi[1]
	}
	bounds.Lo[1+nLen], bounds.Hi[1+nLen] = hyperBounds.Lo[2], hyperBounds.Hi[2]

	seed := make([]float64, 2+nLen)
	seed[0] = cfg.Init.LogVariance
	for i := 0; i < nLen; i++ {
		seed[1+i] = cfg.Init.LogLength
		if len(cfg.Init.LogLengths) == nLen {
			seed[1+i] = cfg.Init.LogLengths[i]
		}
	}
	seed[1+nLen] = cfg.Init.LogNoise

	rng := sample.NewRNG(cfg.Seed ^ 0x5ca1ab1e)
	budget := 250 + 60*nLen
	res := optimize.Multistart(obj, bounds, cfg.Restarts, [][]float64{seed}, rng, cfg.Workers,
		func(f optimize.Objective, x0 []float64, b optimize.Bounds) optimize.Result {
			return optimize.NelderMead(f, x0, b, budget)
		})
	return unpack(res.X)
}

// kernel evaluates the covariance between two points (without the
// white-noise term, which only applies on the diagonal). Hot paths
// resolve p once and call kernelResolved directly; this wrapper is
// the convenience form for single evaluations.
func (g *GP) kernel(p Params, a, b []float64) float64 {
	rk := resolveInto(p, nil)
	return g.kernelResolved(&rk, a, b)
}

// kernelResolved evaluates the covariance with pre-hoisted
// exponentials: no math.Exp in the pairwise loop.
func (g *GP) kernelResolved(rk *resolved, a, b []float64) float64 {
	var r float64
	if rk.weights != nil {
		var sq float64
		for i := range a {
			d := a[i] - b[i]
			sq += (d * d) * rk.weights[i]
		}
		r = math.Sqrt(sq)
	} else {
		var sq float64
		for i := range a {
			d := a[i] - b[i]
			sq += d * d
		}
		r = math.Sqrt(sq) / rk.length
	}
	return kernelShape(g.cfg.Kernel, rk.variance, r)
}

// kernelShape applies the stationary kernel form to a scaled distance.
func kernelShape(kind KernelKind, variance, r float64) float64 {
	switch kind {
	case RBF:
		return variance * math.Exp(-0.5*r*r)
	default: // Matern52
		s5 := math.Sqrt(5) * r
		return variance * (1 + s5 + 5*r*r/3) * math.Exp(-s5)
	}
}

// distCache precomputes the squared pairwise differences of the
// training inputs, packed over the upper triangle (i <= j, row-major
// cursor order). The isotropic cache stores the total squared
// distance per pair; the ARD cache stores per-dimension squared
// differences (pair-major) so any length-scale vector can be applied
// with one multiply-add per dimension.
type distCache struct {
	n, d  int
	m     int       // n*(n+1)/2 packed pairs
	sqIso []float64 // [m] Σ_k (x_i[k]-x_j[k])²; isotropic only
	sqDim []float64 // [m*d] (x_i[k]-x_j[k])² at t*d+k; ARD only
}

func newDistCache(x [][]float64, ard bool) *distCache {
	n := len(x)
	d := len(x[0])
	c := &distCache{n: n, d: d, m: n * (n + 1) / 2}
	if ard {
		c.sqDim = make([]float64, c.m*d)
		t := 0
		for i := 0; i < n; i++ {
			xi := x[i]
			for j := i; j < n; j++ {
				xj := x[j]
				row := c.sqDim[t*d : t*d+d]
				for k := range row {
					dv := xi[k] - xj[k]
					row[k] = dv * dv
				}
				t++
			}
		}
		return c
	}
	c.sqIso = make([]float64, c.m)
	t := 0
	for i := 0; i < n; i++ {
		xi := x[i]
		for j := i; j < n; j++ {
			xj := x[j]
			// Accumulate in dimension order, matching kernelResolved
			// exactly so cached and direct evaluations are
			// bit-identical.
			var sq float64
			for k := range xi {
				dv := xi[k] - xj[k]
				sq += dv * dv
			}
			c.sqIso[t] = sq
			t++
		}
	}
	return c
}

// kernelMatrixInto fills k with the covariance matrix (plus the
// white-noise diagonal) from the cached squared differences — no
// subtraction and no math.Exp in the O(n²) pair loop.
func (g *GP) kernelMatrixInto(rk *resolved, c *distCache, k *linalg.Matrix) {
	n := c.n
	t := 0
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var r float64
			if rk.weights != nil {
				row := c.sqDim[t*c.d : t*c.d+c.d]
				var sq float64
				for kk, w := range rk.weights {
					sq += row[kk] * w
				}
				r = math.Sqrt(sq)
			} else {
				r = math.Sqrt(c.sqIso[t]) / rk.length
			}
			v := kernelShape(g.cfg.Kernel, rk.variance, r)
			if i == j {
				v += rk.noise
			}
			k.Set(i, j, v)
			t++
		}
	}
	linalg.SymmetricFromUpper(k)
}

// kernelMatrix builds the covariance matrix without a cache; it is the
// reference implementation the fast path is tested against, and the
// fallback for callers that have no cache in hand.
func (g *GP) kernelMatrix(p Params) *linalg.Matrix {
	n := len(g.x)
	rk := resolveInto(p, nil)
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.kernelResolved(&rk, g.x[i], g.x[j])
			if i == j {
				v += rk.noise
			}
			k.Set(i, j, v)
		}
	}
	linalg.SymmetricFromUpper(k)
	return k
}

// lmlFrom assembles the log marginal likelihood from an existing
// factorization and weight vector: -½ yᵀα - ½ log|K| - (n/2) log 2π.
func lmlFrom(yNorm, alpha []float64, chol *linalg.Matrix) float64 {
	n := float64(len(yNorm))
	return -0.5*linalg.Dot(yNorm, alpha) - 0.5*linalg.LogDetFromChol(chol) - 0.5*n*math.Log(2*math.Pi)
}

// logMarginal computes the log marginal likelihood for hyperparams p
// from scratch. It is the allocating reference implementation; the
// hyperparameter search uses logMarginalCached.
func (g *GP) logMarginal(p Params) (float64, error) {
	k := g.kernelMatrix(p)
	l, _, err := linalg.Cholesky(k, jitterStart, jitterMaxTries)
	if err != nil {
		return math.Inf(-1), err
	}
	alpha := linalg.CholSolve(l, g.yNorm)
	return lmlFrom(g.yNorm, alpha, l), nil
}

// logMarginalCached computes the log marginal likelihood using the
// distance cache and the scratch buffers — zero heap allocations once
// the scratch is warm. The result is bit-identical to logMarginal.
func (g *GP) logMarginalCached(p Params, c *distCache, s *lmlScratch) (float64, bool) {
	n := len(g.x)
	if s.k == nil || s.k.Rows != n {
		s.k = linalg.NewMatrix(n, n)
		s.chol = nil
	}
	rk := resolveInto(p, s.weights)
	if rk.weights != nil {
		s.weights = rk.weights
	}
	g.kernelMatrixInto(&rk, c, s.k)
	chol, _, err := linalg.CholeskyInto(s.chol, s.k, jitterStart, jitterMaxTries)
	if err != nil {
		return math.Inf(-1), false
	}
	s.chol = chol
	if len(s.v) != n {
		s.v = make([]float64, n)
	}
	alpha := linalg.CholSolveInto(chol, g.yNorm, s.v)
	return lmlFrom(g.yNorm, alpha, chol), true
}

// jitterStart and jitterMaxTries define the escalating-jitter ladder
// used when a near-singular kernel matrix defeats the clean Cholesky:
// retries add jitterStart·10^k to the diagonal (1e-10 up through 1e-3,
// past the 1e-4 floor that in practice rescues duplicate-point
// matrices) before the fit finally reports an error.
const (
	jitterStart    = 1e-10
	jitterMaxTries = 8
)

// jitterTriesFor recovers how many ladder steps produced the jitter
// Cholesky settled on (the ladder is deterministic: 0, 1e-10, 1e-9…).
func jitterTriesFor(jitter float64) int {
	if jitter <= 0 {
		return 0
	}
	return int(math.Round(math.Log10(jitter/jitterStart))) + 1
}

// factorize caches the Cholesky factor, weight vector, resolved
// kernel constants and LML for p. The LML is assembled directly from
// the factorization just computed — the naive path used to factorize
// a second time just to report it.
func (g *GP) factorize(p Params, c *distCache) error {
	n := len(g.x)
	rk := resolveInto(p, nil)
	k := linalg.NewMatrix(n, n)
	g.kernelMatrixInto(&rk, c, k)
	// The final factorization is the one place worth spreading the
	// blocked Cholesky's tiles over workers: the likelihood search
	// already parallelizes across restarts, but this factorization
	// runs alone. Results are identical for any worker count.
	l, jitter, err := linalg.CholeskyWorkersInto(nil, k, jitterStart, jitterMaxTries, par.Workers(g.cfg.Workers))
	if err != nil {
		return fmt.Errorf("gp: kernel matrix not PD: %w", err)
	}
	g.rk = rk
	g.chol = l
	g.jitter = jitter
	g.jitterTries = jitterTriesFor(jitter)
	g.alpha = linalg.CholSolve(l, g.yNorm)
	g.lml = lmlFrom(g.yNorm, g.alpha, l)
	return nil
}

// Extend returns a new GP fitted on (x, y) — which must extend the
// receiver's training inputs: same leading rows, one or more appended
// points — reusing the receiver's hyperparameters and extending its
// cached Cholesky factor by one O(n²) CholAppend per new point
// instead of refactorizing in O(n³). Target normalization and the
// weight vector are recomputed over the full set, so the posterior is
// exactly the one a full refit at the same hyperparameters and jitter
// would produce. The receiver is not modified. If a new pivot is not
// positive (near-duplicate points), Extend transparently falls back
// to a full refit with jitter escalation.
func (g *GP) Extend(x [][]float64, y []float64) (*GP, error) {
	prev := g.x
	if g.activeIdx != nil {
		prev = g.fullX
	}
	n0 := len(prev)
	n := len(x)
	if n <= n0 {
		return nil, fmt.Errorf("gp: Extend needs more than the %d existing points, got %d", n0, n)
	}
	if n != len(y) {
		return nil, fmt.Errorf("gp: bad training shape: %d points, %d targets", n, len(y))
	}
	d := g.Dim()
	for i, r := range x {
		if len(r) != d {
			return nil, fmt.Errorf("gp: ragged row %d", i)
		}
	}
	for i := 0; i < n0; i++ {
		for j, v := range prev[i] {
			if x[i][j] != v {
				return nil, fmt.Errorf("gp: Extend prefix mismatch at row %d", i)
			}
		}
	}

	// The active set is the receiver's training rows plus every
	// appended point (re-selection of the subset happens at the next
	// full Fit, not here). On the exact path the active set is simply
	// the whole input and this gathers nothing.
	ax, ay := x, y
	if g.activeIdx != nil {
		ax = make([][]float64, 0, len(g.activeIdx)+n-n0)
		ay = make([]float64, 0, len(g.activeIdx)+n-n0)
		for _, j := range g.activeIdx {
			ax = append(ax, x[j])
			ay = append(ay, y[j])
		}
		ax = append(ax, x[n0:]...)
		ay = append(ay, y[n0:]...)
	}

	ng := &GP{cfg: g.cfg, params: g.params, rk: g.rk, x: ax, jitter: g.jitter}
	ng.yMean = stats.Mean(ay)
	ng.yStd = stats.StdDev(ay)
	if ng.yStd < 1e-12 {
		ng.yStd = 1
	}
	ng.yNorm = make([]float64, len(ay))
	for i, v := range ay {
		ng.yNorm[i] = (v - ng.yMean) / ng.yStd
	}

	chol := g.chol
	for m := len(ax) - (n - n0); m < len(ax); m++ {
		kvec := make([]float64, m)
		for i := 0; i < m; i++ {
			kvec[i] = g.kernelResolved(&g.rk, ax[i], ax[m])
		}
		diag := g.kernelResolved(&g.rk, ax[m], ax[m]) + g.rk.noise
		next, err := linalg.CholAppend(chol, kvec, diag, g.jitter)
		if err != nil {
			// Near-singular extension: refit from scratch so the
			// jitter can escalate (and, on the sparse path, the
			// subset can be re-selected).
			cfg := g.cfg
			cfg.FitHyper = false
			cfg.Init = g.params
			return Fit(x, y, cfg)
		}
		chol = next
	}
	ng.chol = chol
	ng.alpha = linalg.CholSolve(chol, ng.yNorm)
	ng.lml = lmlFrom(ng.yNorm, ng.alpha, chol)
	if g.activeIdx != nil {
		idx := make([]int, 0, len(g.activeIdx)+n-n0)
		idx = append(idx, g.activeIdx...)
		for i := n0; i < n; i++ {
			idx = append(idx, i)
		}
		ng.fullX = x
		ng.fullY = y
		ng.activeIdx = idx
	}
	return ng, nil
}

// PredictScratch holds the reusable buffers PredictInto needs. The
// zero value is ready to use; buffers grow on demand and may be
// reused across GPs of different sizes. A scratch must not be shared
// between concurrent calls.
type PredictScratch struct {
	ks, v []float64
}

// predictPool backs the non-Into Predict path so casual callers (hedge
// settle, Explain, external users) get the zero-allocation fast path
// without owning a scratch.
var predictPool = sync.Pool{New: func() any { return new(PredictScratch) }}

// Predict returns the posterior mean and variance of the latent
// function at x, in the original target scale.
func (g *GP) Predict(x []float64) (mu, variance float64) {
	s := predictPool.Get().(*PredictScratch)
	mu, variance = g.PredictInto(s, x)
	predictPool.Put(s)
	return mu, variance
}

// PredictInto is Predict using caller-owned scratch buffers: zero
// heap allocations once the scratch is warm. The acquisition
// multistart calls the posterior thousands of times per Suggest, so
// it keeps a pool of scratches instead of allocating two vectors per
// call.
func (g *GP) PredictInto(s *PredictScratch, x []float64) (mu, variance float64) {
	n := len(g.x)
	if cap(s.ks) < n {
		s.ks = make([]float64, n)
	}
	if cap(s.v) < n {
		s.v = make([]float64, n)
	}
	ks := s.ks[:n]
	for i := 0; i < n; i++ {
		ks[i] = g.kernelResolved(&g.rk, g.x[i], x)
	}
	muN := linalg.Dot(ks, g.alpha)
	v := linalg.SolveLowerInto(g.chol, ks, s.v[:n])
	varN := g.kernelResolved(&g.rk, x, x) - linalg.Dot(v, v)
	if varN < 0 {
		varN = 0
	}
	return muN*g.yStd + g.yMean, varN * g.yStd * g.yStd
}

// PredictWithNoise adds the fitted observation-noise variance, giving
// the predictive distribution of a new observation.
func (g *GP) PredictWithNoise(x []float64) (mu, variance float64) {
	mu, v := g.Predict(x)
	return mu, v + g.rk.noise*g.yStd*g.yStd
}

// Params returns the fitted hyperparameters (log space).
func (g *GP) Params() Params { return g.params }

// JitterRetries returns how many escalating-jitter retries the fitted
// factorization needed (0 when the kernel matrix was cleanly positive
// definite). A GP produced by Extend reports 0 unless it fell back to
// a full refit.
func (g *GP) JitterRetries() int { return g.jitterTries }

// LogMarginalLikelihood returns the fitted model's LML (normalized
// target scale).
func (g *GP) LogMarginalLikelihood() float64 { return g.lml }

// N returns the number of training points the GP has seen (the full
// set, even when the sparse path fitted only an active subset).
func (g *GP) N() int {
	if g.activeIdx != nil {
		return len(g.fullX)
	}
	return len(g.x)
}

// Sparse reports whether the GP was fitted on a local active subset
// rather than the full training set.
func (g *GP) Sparse() bool { return g.activeIdx != nil }

// ActiveSize returns the number of training points actually inside
// the fitted model — the active-subset size on the sparse path, N on
// the exact path. Predict cost scales with this, not with N.
func (g *GP) ActiveSize() int { return len(g.x) }

// Dim returns the input dimensionality.
func (g *GP) Dim() int {
	if len(g.x) == 0 {
		return 0
	}
	return len(g.x[0])
}
