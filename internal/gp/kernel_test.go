package gp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/sample"
)

// TestKernelSymmetryProperty: k(a,b) == k(b,a) for both kernels.
func TestKernelSymmetryProperty(t *testing.T) {
	for _, kind := range []KernelKind{Matern52, RBF} {
		g := &GP{cfg: Config{Kernel: kind}}
		p := Params{LogVariance: 0.3, LogLength: -0.5}
		f := func(seed uint64) bool {
			rng := sample.NewRNG(seed)
			a := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			b := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			return math.Abs(g.kernel(p, a, b)-g.kernel(p, b, a)) < 1e-14
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("kind %v: %v", kind, err)
		}
	}
}

// TestKernelDiagonalDominance: k(x,x) >= k(x,y) for stationary
// kernels with positive variance.
func TestKernelDiagonalDominance(t *testing.T) {
	for _, kind := range []KernelKind{Matern52, RBF} {
		g := &GP{cfg: Config{Kernel: kind}}
		p := Params{LogVariance: 0, LogLength: math.Log(0.4)}
		f := func(seed uint64) bool {
			rng := sample.NewRNG(seed)
			x := []float64{rng.Float64(), rng.Float64()}
			y := []float64{rng.Float64(), rng.Float64()}
			return g.kernel(p, x, x) >= g.kernel(p, x, y)-1e-12
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("kind %v: %v", kind, err)
		}
	}
}

// TestKernelMatrixPSDProperty: Gram matrices over random point sets
// plus the white-noise term must factorize without jitter escalation.
func TestKernelMatrixPSDProperty(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%20) + 2
		rng := sample.NewRNG(seed)
		x := make([][]float64, n)
		for i := range x {
			x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		g := &GP{cfg: Config{Kernel: Matern52}, x: x}
		k := g.kernelMatrix(Params{LogVariance: 0, LogLength: math.Log(0.5), LogNoise: math.Log(1e-4)})
		_, _, err := linalg.Cholesky(k, 1e-10, 8)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestKernelDistanceDecay: covariance decreases with distance.
func TestKernelDistanceDecay(t *testing.T) {
	g := &GP{cfg: Config{Kernel: Matern52}}
	p := Params{LogVariance: 0, LogLength: math.Log(0.3)}
	origin := []float64{0}
	prev := math.Inf(1)
	for d := 0.0; d <= 2.0; d += 0.1 {
		v := g.kernel(p, origin, []float64{d})
		if v > prev+1e-12 {
			t.Fatalf("kernel not decaying at distance %v", d)
		}
		prev = v
	}
}

// TestMaternHeavierTailThanRBF: at moderate distance the Matérn 5/2
// kernel retains more covariance than the squared exponential with
// the same length scale — the reason it suits rougher objectives.
func TestMaternHeavierTailThanRBF(t *testing.T) {
	m := &GP{cfg: Config{Kernel: Matern52}}
	r := &GP{cfg: Config{Kernel: RBF}}
	p := Params{LogVariance: 0, LogLength: math.Log(0.3)}
	a, b := []float64{0}, []float64{0.9}
	if m.kernel(p, a, b) <= r.kernel(p, a, b) {
		t.Errorf("Matern (%v) should exceed RBF (%v) at 3 length scales",
			m.kernel(p, a, b), r.kernel(p, a, b))
	}
}
