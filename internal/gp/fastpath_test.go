package gp

// Equivalence tests for the GP fast path: every cached/scratch-reusing
// code path is compared against a naive reference implementation (the
// pre-fast-path code, reproduced verbatim below). Where the fast path
// preserves the floating-point operation order (isotropic kernels,
// cached vs direct evaluation, scratch vs allocating solves) the
// comparison is bit-exact; where it reassociates (the ARD inner loop
// hoists the length-scale exponentials out of the pair loop) the
// tolerance is 1e-9 relative.

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/sample"
)

// naiveKernel is the original per-pair kernel: math.Exp of the length
// scales inside the pair loop, division instead of precomputed
// inverse weights.
func naiveKernel(kind KernelKind, p Params, a, b []float64) float64 {
	variance := math.Exp(p.LogVariance)
	var r float64
	if len(p.LogLengths) > 0 {
		var sq float64
		for i := range a {
			d := (a[i] - b[i]) / math.Exp(p.LogLengths[i])
			sq += d * d
		}
		r = math.Sqrt(sq)
	} else {
		length := math.Exp(p.LogLength)
		var sq float64
		for i := range a {
			d := a[i] - b[i]
			sq += d * d
		}
		r = math.Sqrt(sq) / length
	}
	switch kind {
	case RBF:
		return variance * math.Exp(-0.5*r*r)
	default:
		s5 := math.Sqrt(5) * r
		return variance * (1 + s5 + 5*r*r/3) * math.Exp(-s5)
	}
}

// naiveKernelMatrix is the original kernel-matrix build.
func naiveKernelMatrix(kind KernelKind, p Params, x [][]float64) *linalg.Matrix {
	n := len(x)
	noise := math.Exp(p.LogNoise)
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := naiveKernel(kind, p, x[i], x[j])
			if i == j {
				v += noise
			}
			k.Set(i, j, v)
		}
	}
	linalg.SymmetricFromUpper(k)
	return k
}

// naiveLogMarginal is the original LML: fresh kernel matrix, fresh
// Cholesky, fresh solves, every call.
func naiveLogMarginal(kind KernelKind, p Params, x [][]float64, yNorm []float64) (float64, error) {
	k := naiveKernelMatrix(kind, p, x)
	l, _, err := linalg.Cholesky(k, 1e-10, 8)
	if err != nil {
		return math.Inf(-1), err
	}
	alpha := linalg.CholSolve(l, yNorm)
	n := float64(len(yNorm))
	return -0.5*linalg.Dot(yNorm, alpha) - 0.5*linalg.LogDetFromChol(l) - 0.5*n*math.Log(2*math.Pi), nil
}

// randomTraining builds a reproducible random training set.
func randomTraining(n, d int, seed uint64) ([][]float64, []float64) {
	rng := sample.NewRNG(seed)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		y[i] = math.Sin(3*row[0]) + row[1]*row[1] + 0.1*rng.NormFloat64()
	}
	return x, y
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// isoParams/ardParams draw random hyperparameters inside the search
// bounds.
func isoParams(rng interface{ Float64() float64 }) Params {
	return Params{
		LogVariance: math.Log(0.05) + 3*rng.Float64(),
		LogLength:   math.Log(0.1) + 2*rng.Float64(),
		LogNoise:    math.Log(1e-5) + 4*rng.Float64(),
	}
}

func ardParams(d int, rng interface{ Float64() float64 }) Params {
	p := Params{
		LogVariance: math.Log(0.05) + 3*rng.Float64(),
		LogNoise:    math.Log(1e-5) + 4*rng.Float64(),
	}
	p.LogLengths = make([]float64, d)
	for i := range p.LogLengths {
		p.LogLengths[i] = math.Log(0.1) + 2*rng.Float64()
	}
	return p
}

// TestKernelResolvedMatchesNaiveIso: the isotropic fast kernel is
// bit-identical to the naive one (same operation order, exponentials
// merely hoisted).
func TestKernelResolvedMatchesNaiveIso(t *testing.T) {
	for _, kind := range []KernelKind{Matern52, RBF} {
		g := &GP{cfg: Config{Kernel: kind}}
		f := func(seed uint64) bool {
			rng := sample.NewRNG(seed)
			p := isoParams(rng)
			a := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			b := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			return g.kernel(p, a, b) == naiveKernel(kind, p, a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("kind %v: %v", kind, err)
		}
	}
}

// TestKernelResolvedMatchesNaiveARD: the ARD fast kernel reassociates
// (d²·w instead of (d/ℓ)²), so it must agree within 1e-9 relative.
func TestKernelResolvedMatchesNaiveARD(t *testing.T) {
	for _, kind := range []KernelKind{Matern52, RBF} {
		g := &GP{cfg: Config{Kernel: kind}}
		f := func(seed uint64) bool {
			rng := sample.NewRNG(seed)
			p := ardParams(3, rng)
			a := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			b := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			return relDiff(g.kernel(p, a, b), naiveKernel(kind, p, a, b)) < 1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("kind %v: %v", kind, err)
		}
	}
}

// TestKernelMatrixIntoMatchesDirect: the cache-based matrix build is
// bit-identical to per-pair kernelResolved evaluation, for both
// isotropic and ARD parameter shapes.
func TestKernelMatrixIntoMatchesDirect(t *testing.T) {
	f := func(seed uint64, n8 uint8, ard bool) bool {
		n := int(n8%15) + 2
		d := 4
		x, _ := randomTraining(n, d, seed)
		g := &GP{cfg: Config{Kernel: Matern52}, x: x}
		rng := sample.NewRNG(seed ^ 0xfeed)
		var p Params
		if ard {
			p = ardParams(d, rng)
		} else {
			p = isoParams(rng)
		}
		want := g.kernelMatrix(p)
		cache := newDistCache(x, ard)
		rk := resolveInto(p, nil)
		got := linalg.NewMatrix(n, n)
		g.kernelMatrixInto(&rk, cache, got)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestKernelMatrixMatchesNaive: the resolved matrix build vs the
// original per-pair-exp build — bit-identical for isotropic, 1e-9 for
// ARD.
func TestKernelMatrixMatchesNaive(t *testing.T) {
	x, _ := randomTraining(12, 4, 3)
	g := &GP{cfg: Config{Kernel: Matern52}, x: x}
	rng := sample.NewRNG(4)

	p := isoParams(rng)
	want := naiveKernelMatrix(Matern52, p, x)
	got := g.kernelMatrix(p)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("iso entry %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}

	pa := ardParams(4, rng)
	wantA := naiveKernelMatrix(Matern52, pa, x)
	gotA := g.kernelMatrix(pa)
	for i := range wantA.Data {
		if relDiff(gotA.Data[i], wantA.Data[i]) > 1e-9 {
			t.Fatalf("ard entry %d: %v vs %v", i, gotA.Data[i], wantA.Data[i])
		}
	}
}

// TestLogMarginalCachedMatchesReference: the pooled-scratch LML equals
// the reference logMarginal bit-for-bit (it is the same arithmetic on
// the same matrices), and the reference equals the naive
// implementation exactly for isotropic parameters.
func TestLogMarginalCachedMatchesReference(t *testing.T) {
	f := func(seed uint64, n8 uint8, ard bool) bool {
		n := int(n8%20) + 3
		d := 3
		x, y := randomTraining(n, d, seed)
		g := &GP{cfg: Config{Kernel: Matern52}, x: x}
		g.yMean, g.yStd = 0, 1
		g.yNorm = y
		rng := sample.NewRNG(seed ^ 0xbeef)
		var p Params
		if ard {
			p = ardParams(d, rng)
		} else {
			p = isoParams(rng)
		}
		want, err := g.logMarginal(p)
		if err != nil {
			return true // degenerate draw; nothing to compare
		}
		cache := newDistCache(x, ard)
		s := &lmlScratch{}
		got, ok := g.logMarginalCached(p, cache, s)
		if !ok || got != want {
			return false
		}
		// Scratch reuse: a second evaluation with warm buffers must
		// reproduce the value exactly.
		got2, ok2 := g.logMarginalCached(p, cache, s)
		if !ok2 || got2 != want {
			return false
		}
		if !ard {
			naive, err := naiveLogMarginal(Matern52, p, x, g.yNorm)
			if err != nil || naive != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestLogMarginalMatchesNaiveARDTolerance: the ARD LML through the
// fast kernel agrees with the naive implementation within 1e-9.
func TestLogMarginalMatchesNaiveARDTolerance(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%15) + 3
		d := 3
		x, y := randomTraining(n, d, seed)
		g := &GP{cfg: Config{Kernel: Matern52}, x: x}
		g.yMean, g.yStd = 0, 1
		g.yNorm = y
		p := ardParams(d, sample.NewRNG(seed^0xcafe))
		want, errW := naiveLogMarginal(Matern52, p, x, y)
		got, errG := g.logMarginal(p)
		if errW != nil || errG != nil {
			return (errW != nil) == (errG != nil)
		}
		return relDiff(got, want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPredictIntoMatchesPredict: PredictInto with a reused scratch is
// bit-identical to Predict, including across GPs of different sizes
// sharing one scratch.
func TestPredictIntoMatchesPredict(t *testing.T) {
	var s PredictScratch
	for _, tc := range []struct {
		n   int
		ard bool
	}{{8, false}, {25, false}, {12, true}, {5, true}} {
		x, y := randomTraining(tc.n, 4, uint64(tc.n))
		cfg := DefaultConfig()
		cfg.ARD = tc.ard
		cfg.Restarts = 1
		g, err := Fit(x, y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := sample.NewRNG(99)
		for k := 0; k < 20; k++ {
			probe := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
			wantMu, wantVar := g.Predict(probe)
			gotMu, gotVar := g.PredictInto(&s, probe)
			if gotMu != wantMu || gotVar != wantVar {
				t.Fatalf("n=%d ard=%v probe %d: (%v,%v) vs (%v,%v)",
					tc.n, tc.ard, k, gotMu, gotVar, wantMu, wantVar)
			}
		}
	}
}

// TestPosteriorMatchesNaiveReference: the full fitted posterior (mean
// and variance over a probe grid) computed through the fast path
// agrees with a posterior assembled from the naive kernel ops at the
// same hyperparameters — bit-identical isotropic, 1e-9 ARD.
func TestPosteriorMatchesNaiveReference(t *testing.T) {
	for _, ard := range []bool{false, true} {
		x, y := randomTraining(30, 4, 7)
		cfg := DefaultConfig()
		cfg.ARD = ard
		cfg.Restarts = 2
		cfg.Seed = 7
		g, err := Fit(x, y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := g.Params()

		// Naive posterior at the same hyperparameters.
		yMean := 0.0
		for _, v := range y {
			yMean += v
		}
		yMean /= float64(len(y))
		var sd float64
		for _, v := range y {
			sd += (v - yMean) * (v - yMean)
		}
		sd = math.Sqrt(sd / float64(len(y)-1)) // sample std, matching stats.StdDev
		yNorm := make([]float64, len(y))
		for i, v := range y {
			yNorm[i] = (v - yMean) / sd
		}
		k := naiveKernelMatrix(Matern52, p, x)
		l, _, err := linalg.Cholesky(k, 1e-10, 8)
		if err != nil {
			t.Fatal(err)
		}
		alpha := linalg.CholSolve(l, yNorm)

		rng := sample.NewRNG(13)
		for probeI := 0; probeI < 25; probeI++ {
			probe := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
			ks := make([]float64, len(x))
			for i := range x {
				ks[i] = naiveKernel(Matern52, p, x[i], probe)
			}
			muN := linalg.Dot(ks, alpha)
			v := linalg.SolveLower(l, ks)
			varN := naiveKernel(Matern52, p, probe, probe) - linalg.Dot(v, v)
			if varN < 0 {
				varN = 0
			}
			wantMu := muN*sd + yMean
			wantVar := varN * sd * sd

			gotMu, gotVar := g.Predict(probe)
			if !ard {
				if gotMu != wantMu || gotVar != wantVar {
					t.Fatalf("iso probe %d: (%v,%v) vs naive (%v,%v)", probeI, gotMu, gotVar, wantMu, wantVar)
				}
			} else if relDiff(gotMu, wantMu) > 1e-9 || relDiff(gotVar, wantVar) > 1e-9 {
				t.Fatalf("ard probe %d: (%v,%v) vs naive (%v,%v)", probeI, gotMu, gotVar, wantMu, wantVar)
			}
		}
	}
}

// TestExtendMatchesFullRefit: extending a fitted GP by k points must
// reproduce a from-scratch fit at the same hyperparameters exactly —
// factor, weights, LML, and predictions.
func TestExtendMatchesFullRefit(t *testing.T) {
	for _, tc := range []struct {
		name   string
		ard    bool
		newPts int
	}{{"iso+1", false, 1}, {"iso+4", false, 4}, {"ard+2", true, 2}} {
		t.Run(tc.name, func(t *testing.T) {
			xAll, yAll := randomTraining(30+tc.newPts, 4, 11)
			n0 := 30
			cfg := DefaultConfig()
			cfg.ARD = tc.ard
			cfg.Restarts = 2
			cfg.Seed = 11
			g0, err := Fit(xAll[:n0], yAll[:n0], cfg)
			if err != nil {
				t.Fatal(err)
			}

			ext, err := g0.Extend(xAll, yAll)
			if err != nil {
				t.Fatal(err)
			}

			refCfg := cfg
			refCfg.FitHyper = false
			refCfg.Init = g0.Params()
			ref, err := Fit(xAll, yAll, refCfg)
			if err != nil {
				t.Fatal(err)
			}

			if !ext.Params().Equal(ref.Params()) {
				t.Fatal("hyperparameters drifted through Extend")
			}
			if ext.N() != ref.N() {
				t.Fatalf("N %d vs %d", ext.N(), ref.N())
			}
			for i := range ref.chol.Data {
				if ext.chol.Data[i] != ref.chol.Data[i] {
					t.Fatalf("factor entry %d: %v vs %v", i, ext.chol.Data[i], ref.chol.Data[i])
				}
			}
			for i := range ref.alpha {
				if ext.alpha[i] != ref.alpha[i] {
					t.Fatalf("alpha entry %d: %v vs %v", i, ext.alpha[i], ref.alpha[i])
				}
			}
			if ext.LogMarginalLikelihood() != ref.LogMarginalLikelihood() {
				t.Fatalf("lml %v vs %v", ext.LogMarginalLikelihood(), ref.LogMarginalLikelihood())
			}
			rng := sample.NewRNG(17)
			for k := 0; k < 10; k++ {
				probe := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
				m1, v1 := ext.Predict(probe)
				m2, v2 := ref.Predict(probe)
				if m1 != m2 || v1 != v2 {
					t.Fatalf("probe %d: (%v,%v) vs (%v,%v)", k, m1, v1, m2, v2)
				}
			}
		})
	}
}

// TestExtendChained: repeated one-point extensions (the engine's
// steady-state pattern) stay equal to a single full refit.
func TestExtendChained(t *testing.T) {
	xAll, yAll := randomTraining(26, 3, 23)
	cfg := DefaultConfig()
	cfg.Restarts = 1
	cfg.Seed = 23
	g, err := Fit(xAll[:20], yAll[:20], cfg)
	if err != nil {
		t.Fatal(err)
	}
	for n := 21; n <= 26; n++ {
		g, err = g.Extend(xAll[:n], yAll[:n])
		if err != nil {
			t.Fatal(err)
		}
	}
	refCfg := cfg
	refCfg.FitHyper = false
	refCfg.Init = g.Params()
	ref, err := Fit(xAll, yAll, refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.LogMarginalLikelihood() != ref.LogMarginalLikelihood() {
		t.Fatalf("chained lml %v vs %v", g.LogMarginalLikelihood(), ref.LogMarginalLikelihood())
	}
	mu1, v1 := g.Predict([]float64{0.4, 0.5, 0.6})
	mu2, v2 := ref.Predict([]float64{0.4, 0.5, 0.6})
	if mu1 != mu2 || v1 != v2 {
		t.Fatalf("chained posterior (%v,%v) vs (%v,%v)", mu1, v1, mu2, v2)
	}
}

// TestExtendSurvivesDuplicatePoint: appending an exact duplicate of a
// training point with near-zero fitted noise forces a non-positive
// pivot; Extend must fall back to a jittered full refit instead of
// failing.
func TestExtendSurvivesDuplicatePoint(t *testing.T) {
	x, y := randomTraining(10, 2, 31)
	cfg := Config{Kernel: Matern52, FitHyper: false,
		Init: Params{LogVariance: 0, LogLength: math.Log(0.5), LogNoise: math.Log(1e-14)}}
	g, err := Fit(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	xAll := append(append([][]float64(nil), x...), append([]float64(nil), x[0]...))
	yAll := append(append([]float64(nil), y...), y[0])
	ext, err := g.Extend(xAll, yAll)
	if err != nil {
		t.Fatalf("Extend with duplicate point: %v", err)
	}
	mu, v := ext.Predict(x[0])
	if math.IsNaN(mu) || math.IsNaN(v) {
		t.Fatal("NaN posterior after duplicate-point extension")
	}
}

// TestExtendRejectsBadInput covers the defensive paths.
func TestExtendRejectsBadInput(t *testing.T) {
	x, y := randomTraining(8, 2, 37)
	cfg := DefaultConfig()
	cfg.Restarts = 1
	g, err := Fit(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Extend(x, y); err == nil {
		t.Error("Extend with no new points accepted")
	}
	if _, err := g.Extend(x[:5], y[:5]); err == nil {
		t.Error("Extend with fewer points accepted")
	}
	xs := append(append([][]float64(nil), x...), []float64{0.5, 0.5})
	if _, err := g.Extend(xs, y); err == nil {
		t.Error("Extend with mismatched targets accepted")
	}
	bad := append([][]float64(nil), x...)
	bad[2] = []float64{9, 9} // mutate the prefix
	bad = append(bad, []float64{0.5, 0.5})
	if _, err := g.Extend(bad, append(append([]float64(nil), y...), 1)); err == nil {
		t.Error("Extend with mutated prefix accepted")
	}
	ragged := append(append([][]float64(nil), x...), []float64{0.5})
	if _, err := g.Extend(ragged, append(append([]float64(nil), y...), 1)); err == nil {
		t.Error("Extend with ragged new row accepted")
	}
}

// TestExtendDoesNotMutateReceiver: the original GP keeps serving its
// old posterior after an extension (forked engines depend on it).
func TestExtendDoesNotMutateReceiver(t *testing.T) {
	x, y := randomTraining(12, 2, 41)
	cfg := DefaultConfig()
	cfg.Restarts = 1
	g, err := Fit(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.3, 0.7}
	muBefore, vBefore := g.Predict(probe)
	cholBefore := append([]float64(nil), g.chol.Data...)

	xAll := append(append([][]float64(nil), x...), []float64{0.9, 0.1})
	yAll := append(append([]float64(nil), y...), 2.5)
	if _, err := g.Extend(xAll, yAll); err != nil {
		t.Fatal(err)
	}
	muAfter, vAfter := g.Predict(probe)
	if muAfter != muBefore || vAfter != vBefore {
		t.Fatal("Extend changed the receiver's posterior")
	}
	for i := range cholBefore {
		if g.chol.Data[i] != cholBefore[i] {
			t.Fatal("Extend mutated the receiver's factor")
		}
	}
	if g.N() != 12 {
		t.Fatal("Extend grew the receiver")
	}
}

// TestFitValuesUnchangedByFastPath pins the isotropic fast path to the
// naive implementation end-to-end: a full Fit (hyperparameter search
// included) must produce exactly the LML the naive likelihood assigns
// to its fitted parameters — i.e. the rewrite changed the speed, not
// the model.
func TestFitValuesUnchangedByFastPath(t *testing.T) {
	x, y := randomTraining(20, 3, 53)
	cfg := DefaultConfig()
	cfg.Restarts = 2
	cfg.Seed = 53
	g, err := Fit(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := naiveLogMarginal(Matern52, g.Params(), x, g.yNorm)
	if err != nil {
		t.Fatal(err)
	}
	if g.LogMarginalLikelihood() != want {
		t.Fatalf("fitted LML %v, naive reference %v", g.LogMarginalLikelihood(), want)
	}
}
