package gp

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/sample"
)

// smoothObjective is a random smooth test function: a quadratic bowl
// with a seeded center plus low-frequency sinusoids. No noise — the
// sparse-vs-exact comparisons need a deterministic target.
func smoothObjective(seed uint64, d int) func(u []float64) float64 {
	rng := sample.NewRNG(seed)
	center := make([]float64, d)
	freq := make([]float64, d)
	for i := range center {
		center[i] = 0.2 + 0.6*rng.Float64()
		freq[i] = 1 + 2*rng.Float64()
	}
	return func(u []float64) float64 {
		s := 0.0
		for i := range u {
			dv := u[i] - center[i]
			s += dv*dv + 0.05*math.Sin(freq[i]*3*u[i])
		}
		return s
	}
}

func sparseTrainingSet(seed uint64, n, d int) ([][]float64, []float64) {
	f := smoothObjective(seed, d)
	rng := sample.NewRNG(seed ^ 0xfeed)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		y[i] = f(row)
	}
	return x, y
}

var sparseFixedInit = Params{LogVariance: 0, LogLength: math.Log(0.5), LogNoise: math.Log(1e-4)}

// TestSparseThresholdGating: below the threshold (or with it unset)
// Fit must produce the exact GP, bit-identical to a config with no
// sparse fields at all.
func TestSparseThresholdGating(t *testing.T) {
	x, y := sparseTrainingSet(1, 80, 4)
	exact := DefaultConfig()
	exact.FitHyper = false
	exact.Init = sparseFixedInit
	gExact, err := Fit(x, y, exact)
	if err != nil {
		t.Fatal(err)
	}
	gated := exact
	gated.SparseThreshold = 80 // n == threshold: not exceeded, stays exact
	gGated, err := Fit(x, y, gated)
	if err != nil {
		t.Fatal(err)
	}
	if gGated.Sparse() {
		t.Fatalf("n == threshold must stay exact")
	}
	if gExact.lml != gGated.lml {
		t.Fatalf("gated LML %v != exact %v", gGated.lml, gExact.lml)
	}
	for i := range gExact.alpha {
		if gExact.alpha[i] != gGated.alpha[i] {
			t.Fatalf("gated alpha differs at %d", i)
		}
	}
	for i := range gExact.chol.Data {
		if gExact.chol.Data[i] != gGated.chol.Data[i] {
			t.Fatalf("gated factor differs at %d", i)
		}
	}
}

// TestSparseSubsetSelection pins the selection contract: incumbent
// always included, indices unique/ascending, size exactly k,
// deterministic for a fixed seed.
func TestSparseSubsetSelection(t *testing.T) {
	x, y := sparseTrainingSet(2, 200, 3)
	inc := 0
	for i := range y {
		if y[i] < y[inc] {
			inc = i
		}
	}
	idx := sparseSubset(x, y, 48, 9)
	if len(idx) != 48 {
		t.Fatalf("subset size %d, want 48", len(idx))
	}
	found := false
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Fatalf("indices not strictly ascending at %d", i)
		}
	}
	for _, i := range idx {
		if i == inc {
			found = true
		}
		if i < 0 || i >= len(x) {
			t.Fatalf("index %d out of range", i)
		}
	}
	if !found {
		t.Fatalf("incumbent %d not in active set", inc)
	}
	again := sparseSubset(x, y, 48, 9)
	for i := range idx {
		if idx[i] != again[i] {
			t.Fatalf("selection not deterministic at %d", i)
		}
	}
	other := sparseSubset(x, y, 48, 10)
	same := true
	for i := range idx {
		if idx[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Logf("note: reservoir identical across seeds (possible but unlikely)")
	}
}

// TestSparsePredictionsNearIncumbent is the quality property test: on
// random smooth objectives, the sparse GP's posterior mean at and
// around the incumbent must agree with the exact GP's to within 2% of
// the target's standard deviation — the active set keeps every
// near-incumbent point, so only far-field mass is approximated.
func TestSparsePredictionsNearIncumbent(t *testing.T) {
	const tol = 0.02 // fraction of yStd, the stated tolerance
	for seed := uint64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			d := 4
			x, y := sparseTrainingSet(seed*31, 700, d)
			cfg := DefaultConfig()
			cfg.FitHyper = false
			cfg.Init = sparseFixedInit
			cfg.Seed = seed
			gExact, err := Fit(x, y, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sp := cfg
			sp.SparseThreshold = 512
			gSparse, err := Fit(x, y, sp)
			if err != nil {
				t.Fatal(err)
			}
			if !gSparse.Sparse() || gSparse.ActiveSize() != 512 || gSparse.N() != 700 {
				t.Fatalf("sparse=%v active=%d n=%d", gSparse.Sparse(), gSparse.ActiveSize(), gSparse.N())
			}
			yStd := gExact.yStd
			inc := 0
			for i := range y {
				if y[i] < y[inc] {
					inc = i
				}
			}
			rng := sample.NewRNG(seed ^ 0xabc)
			probe := [][]float64{x[inc]}
			for p := 0; p < 8; p++ {
				q := make([]float64, d)
				for j := range q {
					q[j] = x[inc][j] + 0.05*(rng.Float64()-0.5)
				}
				probe = append(probe, q)
			}
			for pi, q := range probe {
				muE, varE := gExact.Predict(q)
				muS, varS := gSparse.Predict(q)
				if math.Abs(muE-muS) > tol*yStd {
					t.Errorf("probe %d: |Δmu| = %g > %g (mu exact %g sparse %g)",
						pi, math.Abs(muE-muS), tol*yStd, muE, muS)
				}
				if varS < 0 || math.IsNaN(varS) || math.IsInf(varS, 0) {
					t.Errorf("probe %d: bad sparse variance %g (exact %g)", pi, varS, varE)
				}
			}
		})
	}
}

// TestSparseExtendMatchesSubsetRefit: Extend on the sparse path must
// be bit-identical to an exact refit on (active subset + new points)
// at the same hyperparameters — the same contract the exact path's
// Extend already has, applied to the active set.
func TestSparseExtendMatchesSubsetRefit(t *testing.T) {
	x, y := sparseTrainingSet(7, 600, 4)
	cfg := DefaultConfig()
	cfg.FitHyper = false
	cfg.Init = sparseFixedInit
	cfg.SparseThreshold = 512
	g, err := Fit(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := smoothObjective(7, 4)
	x2 := append(append([][]float64(nil), x...),
		[]float64{0.31, 0.62, 0.13, 0.84},
		[]float64{0.11, 0.92, 0.53, 0.24})
	y2 := append(append([]float64(nil), y...), f(x2[600]), f(x2[601]))
	ext, err := g.Extend(x2, y2)
	if err != nil {
		t.Fatal(err)
	}
	if !ext.Sparse() || ext.N() != 602 || ext.ActiveSize() != g.ActiveSize()+2 {
		t.Fatalf("sparse=%v n=%d active=%d", ext.Sparse(), ext.N(), ext.ActiveSize())
	}
	// Reference: exact fit on the same active rows.
	rx := make([][]float64, 0, len(g.activeIdx)+2)
	ry := make([]float64, 0, len(g.activeIdx)+2)
	for _, j := range g.activeIdx {
		rx = append(rx, x2[j])
		ry = append(ry, y2[j])
	}
	rx = append(rx, x2[600], x2[601])
	ry = append(ry, y2[600], y2[601])
	rcfg := cfg
	rcfg.SparseThreshold = 0
	rcfg.Init = g.Params()
	ref, err := Fit(rx, ry, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if ext.lml != ref.lml {
		t.Fatalf("Extend LML %v != subset-refit %v", ext.lml, ref.lml)
	}
	for i := range ref.alpha {
		if ext.alpha[i] != ref.alpha[i] {
			t.Fatalf("alpha differs at %d", i)
		}
	}
	probe := []float64{0.4, 0.5, 0.6, 0.3}
	me, ve := ext.Predict(probe)
	mr, vr := ref.Predict(probe)
	if me != mr || ve != vr {
		t.Fatalf("Extend prediction (%v,%v) != refit (%v,%v)", me, ve, mr, vr)
	}
	// The receiver must be untouched (Fork sharing).
	if g.N() != 600 || g.ActiveSize() != 512 {
		t.Fatalf("Extend mutated receiver: n=%d active=%d", g.N(), g.ActiveSize())
	}
}

// TestSparseExtendDuplicateFallback: appending a duplicate of an
// active point defeats CholAppend; the sparse path must transparently
// refit (re-selecting the subset) instead of failing.
func TestSparseExtendDuplicateFallback(t *testing.T) {
	x, y := sparseTrainingSet(9, 600, 4)
	cfg := DefaultConfig()
	cfg.FitHyper = false
	cfg.Init = sparseFixedInit
	cfg.SparseThreshold = 512
	g, err := Fit(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dup := append([]float64(nil), g.x[0]...)
	x2 := append(append([][]float64(nil), x...), dup)
	y2 := append(append([]float64(nil), y...), y[g.activeIdx[0]])
	ext, err := g.Extend(x2, y2)
	if err != nil {
		t.Fatalf("duplicate extension failed: %v", err)
	}
	if ext.N() != 601 {
		t.Fatalf("n=%d, want 601", ext.N())
	}
	mu, v := ext.Predict(x[0])
	if math.IsNaN(mu) || math.IsNaN(v) {
		t.Fatalf("bad posterior after duplicate: mu=%g var=%g", mu, v)
	}
}
