package gp

import (
	"math"
	"testing"

	"repro/internal/sample"
)

// smooth1d is a smooth test function on [0,1].
func smooth1d(x float64) float64 { return math.Sin(4*x) + 0.5*x }

func grid1d(n int) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i) / float64(n-1)
		xs[i] = []float64{v}
		ys[i] = smooth1d(v)
	}
	return xs, ys
}

func TestFitInterpolatesNoiseFree(t *testing.T) {
	xs, ys := grid1d(12)
	g, err := Fit(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// At training points the posterior mean should be close to the
	// observations (small fitted noise).
	for i, x := range xs {
		mu, _ := g.Predict(x)
		if math.Abs(mu-ys[i]) > 0.05 {
			t.Errorf("train point %d: mu=%v want %v", i, mu, ys[i])
		}
	}
}

func TestPredictBetweenPoints(t *testing.T) {
	xs, ys := grid1d(15)
	g, err := Fit(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_ = ys
	for _, v := range []float64{0.13, 0.37, 0.61, 0.88} {
		mu, _ := g.Predict([]float64{v})
		if math.Abs(mu-smooth1d(v)) > 0.1 {
			t.Errorf("x=%v: mu=%v want %v", v, mu, smooth1d(v))
		}
	}
}

func TestVarianceGrowsAwayFromData(t *testing.T) {
	// Train only on the left half; variance on the right should be
	// larger (the exploration signal BO relies on).
	n := 10
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i) / float64(n-1) * 0.4
		xs[i] = []float64{v}
		ys[i] = smooth1d(v)
	}
	g, err := Fit(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, nearVar := g.Predict([]float64{0.2})
	_, farVar := g.Predict([]float64{0.95})
	if farVar <= nearVar {
		t.Errorf("variance should grow away from data: near=%v far=%v", nearVar, farVar)
	}
}

func TestVarianceNonNegative(t *testing.T) {
	xs, ys := grid1d(20)
	g, err := Fit(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 50; i++ {
		_, v := g.Predict([]float64{float64(i) / 50})
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("variance %v at %v", v, float64(i)/50)
		}
	}
}

func TestNoisyObservationsSmoothed(t *testing.T) {
	rng := sample.NewRNG(3)
	n := 60
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Float64()
		xs[i] = []float64{v}
		ys[i] = smooth1d(v) + 0.1*rng.NormFloat64()
	}
	g, err := Fit(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Fitted noise should be materially nonzero.
	if noise := math.Exp(g.Params().LogNoise); noise < 1e-5 {
		t.Errorf("fitted noise %v too small for noisy data", noise)
	}
	// Predictions should track the underlying function better than
	// the raw noise level at a few probe points.
	var mse float64
	for _, v := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		mu, _ := g.Predict([]float64{v})
		d := mu - smooth1d(v)
		mse += d * d
	}
	if mse/5 > 0.01 {
		t.Errorf("denoised MSE %v too high", mse/5)
	}
}

func TestPredictWithNoiseLarger(t *testing.T) {
	xs, ys := grid1d(10)
	g, err := Fit(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, v1 := g.Predict([]float64{0.5})
	_, v2 := g.PredictWithNoise([]float64{0.5})
	if v2 <= v1 {
		t.Errorf("predictive variance with noise (%v) should exceed latent (%v)", v2, v1)
	}
}

func TestMultiDim(t *testing.T) {
	rng := sample.NewRNG(4)
	n, d := 60, 5
	xs := make([][]float64, n)
	ys := make([]float64, n)
	f := func(x []float64) float64 { return math.Sin(3*x[0]) + x[1]*x[1] - 0.5*x[2] }
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		xs[i] = row
		ys[i] = f(row)
	}
	g, err := Fit(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	for k := 0; k < 30; k++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		mu, _ := g.Predict(row)
		dv := mu - f(row)
		mse += dv * dv
	}
	if mse/30 > 0.05 {
		t.Errorf("5-dim GP MSE %v", mse/30)
	}
}

func TestRBFKernelOption(t *testing.T) {
	xs, ys := grid1d(12)
	cfg := DefaultConfig()
	cfg.Kernel = RBF
	g, err := Fit(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := g.Predict([]float64{0.5})
	if math.Abs(mu-smooth1d(0.5)) > 0.1 {
		t.Errorf("RBF GP mu=%v want %v", mu, smooth1d(0.5))
	}
}

func TestFixedHyperparameters(t *testing.T) {
	xs, ys := grid1d(8)
	cfg := Config{Kernel: Matern52, FitHyper: false,
		Init: Params{LogVariance: 0, LogLength: math.Log(0.3), LogNoise: math.Log(1e-4)}}
	g, err := Fit(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Params().Equal(cfg.Init) {
		t.Errorf("params changed despite FitHyper=false: %+v", g.Params())
	}
}

func TestHyperFitImprovesLML(t *testing.T) {
	xs, ys := grid1d(15)
	bad := Config{Kernel: Matern52, FitHyper: false,
		Init: Params{LogVariance: math.Log(50), LogLength: math.Log(5), LogNoise: math.Log(0.5)}}
	gBad, err := Fit(xs, ys, bad)
	if err != nil {
		t.Fatal(err)
	}
	gFit, err := Fit(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if gFit.LogMarginalLikelihood() <= gBad.LogMarginalLikelihood() {
		t.Errorf("fitted LML %v should beat fixed bad LML %v",
			gFit.LogMarginalLikelihood(), gBad.LogMarginalLikelihood())
	}
}

func TestConstantTargets(t *testing.T) {
	xs := [][]float64{{0.1}, {0.5}, {0.9}}
	ys := []float64{3, 3, 3}
	g, err := Fit(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mu, v := g.Predict([]float64{0.3})
	if math.Abs(mu-3) > 1e-6 {
		t.Errorf("constant GP mu=%v", mu)
	}
	if math.IsNaN(v) {
		t.Error("constant GP variance NaN")
	}
}

func TestDuplicatePointsSurvive(t *testing.T) {
	// Duplicate inputs make the noise-free kernel singular; the white
	// noise term and jitter must keep the factorization alive.
	xs := [][]float64{{0.5}, {0.5}, {0.5}, {0.2}, {0.8}}
	ys := []float64{1.0, 1.1, 0.9, 0.5, 1.5}
	g, err := Fit(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := g.Predict([]float64{0.5})
	if math.Abs(mu-1.0) > 0.2 {
		t.Errorf("duplicate-point mean %v, want ~1.0", mu)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, DefaultConfig()); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, DefaultConfig()); err == nil {
		t.Error("mismatched fit accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {3}}, []float64{1, 2}, DefaultConfig()); err == nil {
		t.Error("ragged fit accepted")
	}
}

func TestAccessors(t *testing.T) {
	xs, ys := grid1d(7)
	g, err := Fit(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 7 || g.Dim() != 1 {
		t.Errorf("N=%d Dim=%d", g.N(), g.Dim())
	}
}

func TestDeterministicFit(t *testing.T) {
	xs, ys := grid1d(10)
	cfg := DefaultConfig()
	cfg.Seed = 42
	a, err := Fit(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Params().Equal(b.Params()) {
		t.Error("same seed produced different hyperparameters")
	}
}

func TestARDLearnsRelevance(t *testing.T) {
	// Anisotropic target: only dimension 0 matters. ARD should learn
	// a much longer length scale for the inert dimension and fit
	// held-out data at least as well as the isotropic model.
	rng := sample.NewRNG(7)
	n := 50
	xs := make([][]float64, n)
	ys := make([]float64, n)
	f := func(x []float64) float64 { return math.Sin(6 * x[0]) }
	for i := 0; i < n; i++ {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
		ys[i] = f(xs[i])
	}
	iso := DefaultConfig()
	ard := DefaultConfig()
	ard.ARD = true
	gIso, err := Fit(xs, ys, iso)
	if err != nil {
		t.Fatal(err)
	}
	gArd, err := Fit(xs, ys, ard)
	if err != nil {
		t.Fatal(err)
	}
	if len(gArd.Params().LogLengths) != 2 {
		t.Fatalf("ARD length scales: %v", gArd.Params().LogLengths)
	}
	// The inert dimension's scale should be longer than the active one's.
	ls := gArd.Params().LogLengths
	if ls[1] <= ls[0] {
		t.Errorf("inert dim scale %v should exceed active dim scale %v", ls[1], ls[0])
	}
	// Held-out error comparison.
	var mseIso, mseArd float64
	for k := 0; k < 40; k++ {
		p := []float64{rng.Float64(), rng.Float64()}
		mi, _ := gIso.Predict(p)
		ma, _ := gArd.Predict(p)
		mseIso += (mi - f(p)) * (mi - f(p))
		mseArd += (ma - f(p)) * (ma - f(p))
	}
	if mseArd > mseIso*1.5 {
		t.Errorf("ARD MSE %v should not be materially worse than isotropic %v", mseArd/40, mseIso/40)
	}
}

func TestARDFixedHyper(t *testing.T) {
	xs := [][]float64{{0.1, 0.2}, {0.5, 0.9}, {0.9, 0.3}, {0.3, 0.7}}
	ys := []float64{1, 2, 3, 2.5}
	cfg := Config{Kernel: Matern52, FitHyper: false,
		Init: Params{LogVariance: 0, LogLengths: []float64{math.Log(0.5), math.Log(2)}, LogNoise: math.Log(1e-4)}}
	g, err := Fit(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Params().Equal(cfg.Init) {
		t.Errorf("fixed ARD params changed: %+v", g.Params())
	}
	mu, v := g.Predict([]float64{0.1, 0.2})
	if math.Abs(mu-1) > 0.1 || v < 0 {
		t.Errorf("ARD prediction mu=%v v=%v", mu, v)
	}
}
