package gp_test

import (
	"fmt"
	"math"

	"repro/internal/gp"
)

// A GP fit gives both a prediction and an uncertainty — the two
// quantities the acquisition functions trade off.
func ExampleFit() {
	x := [][]float64{{0.0}, {0.25}, {0.5}, {0.75}, {1.0}}
	y := make([]float64, len(x))
	for i, xi := range x {
		y[i] = math.Sin(3 * xi[0])
	}
	g, err := gp.Fit(x, y, gp.DefaultConfig())
	if err != nil {
		panic(err)
	}
	muNear, varNear := g.Predict([]float64{0.5}) // on a training point
	_, varFar := g.Predict([]float64{0.98})      // between/beyond data
	fmt.Printf("mean near data: %.2f (truth %.2f)\n", muNear, math.Sin(1.5))
	fmt.Println("variance grows away from data:", varFar > varNear)
	// Output:
	// mean near data: 1.00 (truth 1.00)
	// variance grows away from data: true
}
