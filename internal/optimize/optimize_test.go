package optimize

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/sample"
)

func sphere(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += (v - 0.3) * (v - 0.3)
	}
	return s
}

func rosenbrock(x []float64) float64 {
	var s float64
	for i := 0; i < len(x)-1; i++ {
		a := x[i+1] - x[i]*x[i]
		b := 1 - x[i]
		s += 100*a*a + b*b
	}
	return s
}

func TestNelderMeadSphere(t *testing.T) {
	b := UnitBox(4)
	r := NelderMead(sphere, []float64{0.9, 0.9, 0.9, 0.9}, b, 4000)
	if r.F > 1e-6 {
		t.Errorf("NM sphere min = %v at %v", r.F, r.X)
	}
	for _, v := range r.X {
		if math.Abs(v-0.3) > 1e-2 {
			t.Errorf("NM sphere solution %v, want 0.3", r.X)
		}
	}
}

func TestNelderMeadRespectsBounds(t *testing.T) {
	// Minimum of (x+1)^2 over [0,1] is at the boundary x=0.
	f := func(x []float64) float64 { return (x[0] + 1) * (x[0] + 1) }
	b := UnitBox(1)
	r := NelderMead(f, []float64{0.8}, b, 500)
	if r.X[0] < 0 || r.X[0] > 1 {
		t.Fatalf("solution %v outside box", r.X)
	}
	if r.X[0] > 0.02 {
		t.Errorf("boundary optimum not found: %v", r.X)
	}
}

func TestLBFGSBSphere(t *testing.T) {
	b := UnitBox(6)
	r := LBFGSB(sphere, []float64{0.9, 0.1, 0.5, 0.7, 0.2, 0.8}, b, 100)
	if r.F > 1e-8 {
		t.Errorf("LBFGSB sphere min = %v", r.F)
	}
}

func TestLBFGSBRosenbrock(t *testing.T) {
	// Optimum (1,1) sits at the box corner of [0,1]^2.
	b := UnitBox(2)
	r := LBFGSB(rosenbrock, []float64{0.2, 0.8}, b, 400)
	if r.F > 1e-4 {
		t.Errorf("LBFGSB rosenbrock min = %v at %v", r.F, r.X)
	}
}

func TestLBFGSBBoundaryOptimum(t *testing.T) {
	f := func(x []float64) float64 { return -x[0] - 2*x[1] } // max at (1,1)
	b := UnitBox(2)
	r := LBFGSB(f, []float64{0.5, 0.5}, b, 100)
	if math.Abs(r.X[0]-1) > 1e-6 || math.Abs(r.X[1]-1) > 1e-6 {
		t.Errorf("boundary solution %v, want (1,1)", r.X)
	}
}

func TestLBFGSBHandlesFlatFunction(t *testing.T) {
	f := func(x []float64) float64 { return 42 }
	b := UnitBox(3)
	r := LBFGSB(f, []float64{0.5, 0.5, 0.5}, b, 50)
	if r.F != 42 {
		t.Errorf("flat function value %v", r.F)
	}
}

func TestMultistartEscapesLocalMinima(t *testing.T) {
	// Two basins: a shallow one near 0.1 (f=1) and the global at 0.9
	// (f=0). A single local run from 0.1 stays in the shallow basin;
	// multistart should find the global one.
	f := func(x []float64) float64 {
		v := x[0]
		a := (v - 0.1) * (v - 0.1) * 40
		bb := (v-0.9)*(v-0.9)*40 - 1
		return math.Min(a, bb) + 1
	}
	b := UnitBox(1)
	local := func(fn Objective, x0 []float64, bb Bounds) Result { return LBFGSB(fn, x0, bb, 60) }
	single := local(f, []float64{0.1}, b)
	multi := Multistart(f, b, 20, [][]float64{{0.1}}, sample.NewRNG(1), 1, local)
	if single.F < 0.5 {
		t.Fatalf("test premise broken: single run from shallow basin found %v", single.F)
	}
	if multi.F > 1e-3 {
		t.Errorf("multistart min = %v, want ~0", multi.F)
	}
	if math.Abs(multi.X[0]-0.9) > 0.05 {
		t.Errorf("multistart solution %v, want 0.9", multi.X)
	}
}

func TestMultistartUsesSeeds(t *testing.T) {
	// Zero random starts: only the seed is used.
	calls := 0
	f := func(x []float64) float64 { calls++; return sphere(x) }
	b := UnitBox(2)
	r := Multistart(f, b, 0, [][]float64{{0.31, 0.29}}, sample.NewRNG(2), 1,
		func(fn Objective, x0 []float64, bb Bounds) Result { return LBFGSB(fn, x0, bb, 50) })
	if r.F > 1e-8 {
		t.Errorf("seeded multistart min = %v", r.F)
	}
	if calls == 0 {
		t.Error("objective never called")
	}
}

func TestMultistartWorkersParity(t *testing.T) {
	// The determinism contract: workers=1 and workers=8 must produce
	// bit-identical results (argmin, location, eval count) for the
	// same rng seed, including tie-breaking by run index.
	f := func(x []float64) float64 {
		var s float64
		for _, v := range x {
			d := v - 0.3
			s += d*d + 0.05*(1-math.Cos(8*math.Pi*d))
		}
		return s
	}
	b := UnitBox(3)
	local := func(fn Objective, x0 []float64, bb Bounds) Result { return LBFGSB(fn, x0, bb, 60) }
	run := func(workers int) Result {
		return Multistart(f, b, 12, [][]float64{{0.9, 0.9, 0.9}}, sample.NewRNG(11), workers, local)
	}
	serial := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		if got.F != serial.F || got.Evals != serial.Evals {
			t.Errorf("workers=%d: (F=%v, Evals=%d) != serial (F=%v, Evals=%d)",
				w, got.F, got.Evals, serial.F, serial.Evals)
		}
		for i := range serial.X {
			if got.X[i] != serial.X[i] {
				t.Errorf("workers=%d: X[%d] = %v, serial %v", w, i, got.X[i], serial.X[i])
			}
		}
	}
}

func TestMultistartEvalsSummed(t *testing.T) {
	// Evals must account every run, not just the winner's.
	var calls atomic.Int64
	f := func(x []float64) float64 { calls.Add(1); return sphere(x) }
	b := UnitBox(2)
	r := Multistart(f, b, 4, nil, sample.NewRNG(3), 1,
		func(fn Objective, x0 []float64, bb Bounds) Result { return LBFGSB(fn, x0, bb, 20) })
	if int64(r.Evals) != calls.Load() {
		t.Errorf("Evals = %d, objective called %d times", r.Evals, calls.Load())
	}
}

func TestClamp(t *testing.T) {
	b := UnitBox(3)
	x := b.Clamp([]float64{-1, 0.5, 2})
	if x[0] != 0 || x[1] != 0.5 || x[2] != 1 {
		t.Errorf("Clamp = %v", x)
	}
}

func TestEvalsCounted(t *testing.T) {
	b := UnitBox(2)
	r := NelderMead(sphere, []float64{0.9, 0.9}, b, 100)
	if r.Evals == 0 || r.Evals > 110 {
		t.Errorf("NM evals = %d", r.Evals)
	}
	r = LBFGSB(sphere, []float64{0.9, 0.9}, b, 50)
	if r.Evals == 0 {
		t.Error("LBFGSB evals not counted")
	}
}

func TestNelderMeadHighDim(t *testing.T) {
	// The acquisition optimizer may run in up to ~10 selected dims.
	d := 10
	b := UnitBox(d)
	x0 := make([]float64, d)
	for i := range x0 {
		x0[i] = 0.9
	}
	r := NelderMead(sphere, x0, b, 6000)
	if r.F > 1e-3 {
		t.Errorf("NM 10-dim sphere min = %v", r.F)
	}
}

func TestCMAESSphere(t *testing.T) {
	b := UnitBox(6)
	x0 := []float64{0.9, 0.1, 0.5, 0.7, 0.2, 0.8}
	r := CMAES(sphere, x0, b, CMAESConfig{MaxEvals: 3000, Seed: 1}, sample.NewRNG(1))
	if r.F > 1e-4 {
		t.Errorf("CMAES sphere min = %v at %v", r.F, r.X)
	}
	if r.Evals == 0 || r.Evals > 3000 {
		t.Errorf("evals = %d", r.Evals)
	}
}

func TestCMAESRosenbrock2D(t *testing.T) {
	// Rosenbrock's curved valley is the worst case for a diagonal
	// covariance (the separable variant cannot learn the correlation),
	// so only require solid progress, not the exact optimum.
	b := UnitBox(2)
	start := rosenbrock([]float64{0.2, 0.8})
	r := CMAES(rosenbrock, []float64{0.2, 0.8}, b, CMAESConfig{MaxEvals: 6000, Seed: 2}, sample.NewRNG(2))
	if r.F > 0.3 || r.F > start/100 {
		t.Errorf("CMAES rosenbrock min = %v (start %v)", r.F, start)
	}
}

func TestCMAESMultimodal(t *testing.T) {
	// Rastrigin-like separable multimodal function: CMA-ES should
	// land in a good basin far more reliably than a single local
	// gradient run.
	f := func(x []float64) float64 {
		var s float64
		for _, v := range x {
			d := v - 0.3
			s += d*d + 0.05*(1-math.Cos(8*math.Pi*d))
		}
		return s
	}
	b := UnitBox(4)
	r := CMAES(f, []float64{0.9, 0.9, 0.9, 0.9}, b, CMAESConfig{MaxEvals: 5000, Seed: 3}, sample.NewRNG(3))
	if r.F > 0.02 {
		t.Errorf("CMAES multimodal min = %v", r.F)
	}
}

func TestCMAESRespectsBounds(t *testing.T) {
	f := func(x []float64) float64 { return -x[0] } // optimum at the boundary
	b := UnitBox(1)
	r := CMAES(f, []float64{0.5}, b, CMAESConfig{MaxEvals: 600, Seed: 4}, sample.NewRNG(4))
	if r.X[0] < 0 || r.X[0] > 1 {
		t.Fatalf("solution %v outside box", r.X)
	}
	if r.X[0] < 0.99 {
		t.Errorf("boundary optimum not reached: %v", r.X[0])
	}
}

func TestCMAESDeterministic(t *testing.T) {
	b := UnitBox(3)
	run := func() float64 {
		return CMAES(sphere, []float64{0.8, 0.8, 0.8}, b,
			CMAESConfig{MaxEvals: 800, Seed: 5}, sample.NewRNG(5)).F
	}
	if run() != run() {
		t.Error("same seed differs")
	}
}

func TestCMAESTinyBudget(t *testing.T) {
	b := UnitBox(8)
	x0 := make([]float64, 8)
	r := CMAES(sphere, x0, b, CMAESConfig{MaxEvals: 5, Seed: 6}, sample.NewRNG(6))
	if r.X == nil || math.IsInf(r.F, 1) {
		t.Errorf("tiny budget returned nothing: %+v", r)
	}
}
