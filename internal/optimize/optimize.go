// Package optimize provides the numerical optimizers behind ROBOTune:
// a box-constrained Nelder-Mead simplex (used for GP hyperparameter
// fitting) and a projected-gradient L-BFGS-B with numerical gradients
// (used to optimize acquisition functions, following §4 of the
// paper), plus a multistart driver for both.
package optimize

import (
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/par"
)

// Objective is a function to minimize over a box.
type Objective func(x []float64) float64

// Bounds is the box constraint: Lo[i] <= x[i] <= Hi[i].
type Bounds struct {
	Lo, Hi []float64
}

// UnitBox returns [0,1]^d bounds.
func UnitBox(d int) Bounds {
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := range hi {
		hi[i] = 1
	}
	return Bounds{Lo: lo, Hi: hi}
}

// Clamp projects x into the bounds in place and returns it.
func (b Bounds) Clamp(x []float64) []float64 {
	for i := range x {
		if x[i] < b.Lo[i] {
			x[i] = b.Lo[i]
		}
		if x[i] > b.Hi[i] {
			x[i] = b.Hi[i]
		}
	}
	return x
}

// Result is the outcome of an optimization run.
type Result struct {
	X     []float64
	F     float64
	Evals int
}

// NelderMead minimizes f within bounds starting from x0 using the
// downhill-simplex method with adaptive parameters and projection
// onto the box. maxEvals limits objective calls (default 200·d).
func NelderMead(f Objective, x0 []float64, b Bounds, maxEvals int) Result {
	d := len(x0)
	if maxEvals <= 0 {
		maxEvals = 200 * d
	}
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(b.Clamp(x))
	}

	// Adaptive coefficients (Gao & Han) help in higher dimensions.
	alpha := 1.0
	beta := 1.0 + 2.0/float64(d)
	gamma := 0.75 - 1.0/(2.0*float64(d))
	delta := 1.0 - 1.0/float64(d)

	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, d+1)
	x0 = b.Clamp(append([]float64(nil), x0...))
	simplex[0] = vertex{x: x0, f: eval(append([]float64(nil), x0...))}
	for i := 0; i < d; i++ {
		x := append([]float64(nil), x0...)
		step := 0.1 * (b.Hi[i] - b.Lo[i])
		if step == 0 {
			step = 0.05
		}
		if x[i]+step > b.Hi[i] {
			x[i] -= step
		} else {
			x[i] += step
		}
		simplex[i+1] = vertex{x: x, f: eval(append([]float64(nil), x...))}
	}

	order := func() {
		sort.Slice(simplex, func(a, bb int) bool { return simplex[a].f < simplex[bb].f })
	}
	centroid := make([]float64, d)
	for evals < maxEvals {
		order()
		// Convergence: simplex collapsed in value.
		if math.Abs(simplex[d].f-simplex[0].f) < 1e-12*(math.Abs(simplex[0].f)+1e-12) {
			break
		}
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < d; i++ {
			for j := range centroid {
				centroid[j] += simplex[i].x[j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(d)
		}
		worst := simplex[d]

		reflect := make([]float64, d)
		for j := range reflect {
			reflect[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		fr := eval(reflect)
		switch {
		case fr < simplex[0].f:
			// Try expansion.
			expand := make([]float64, d)
			for j := range expand {
				expand[j] = centroid[j] + beta*(reflect[j]-centroid[j])
			}
			fe := eval(expand)
			if fe < fr {
				simplex[d] = vertex{x: expand, f: fe}
			} else {
				simplex[d] = vertex{x: reflect, f: fr}
			}
		case fr < simplex[d-1].f:
			simplex[d] = vertex{x: reflect, f: fr}
		default:
			// Contraction.
			contract := make([]float64, d)
			if fr < worst.f {
				for j := range contract {
					contract[j] = centroid[j] + gamma*(reflect[j]-centroid[j])
				}
			} else {
				for j := range contract {
					contract[j] = centroid[j] - gamma*(centroid[j]-worst.x[j])
				}
			}
			fc := eval(contract)
			if fc < math.Min(fr, worst.f) {
				simplex[d] = vertex{x: contract, f: fc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= d; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = simplex[0].x[j] + delta*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = eval(append([]float64(nil), simplex[i].x...))
					if evals >= maxEvals {
						break
					}
				}
			}
		}
	}
	order()
	return Result{X: b.Clamp(simplex[0].x), F: simplex[0].f, Evals: evals}
}

// LBFGSB minimizes f within bounds from x0 using a limited-memory
// BFGS direction with gradient projection for the box constraints.
// Gradients are central finite differences, as the black-box
// acquisition surfaces here have no analytic form exposed.
func LBFGSB(f Objective, x0 []float64, b Bounds, maxIters int) Result {
	d := len(x0)
	if maxIters <= 0 {
		maxIters = 100
	}
	const memory = 8
	const gradEps = 1e-6

	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}
	grad := func(x []float64, g []float64) {
		for i := 0; i < d; i++ {
			h := gradEps * math.Max(1, math.Abs(x[i]))
			xi := x[i]
			lo, hi := xi-h, xi+h
			if lo < b.Lo[i] {
				lo = b.Lo[i]
			}
			if hi > b.Hi[i] {
				hi = b.Hi[i]
			}
			if hi == lo {
				g[i] = 0
				continue
			}
			x[i] = hi
			fp := eval(x)
			x[i] = lo
			fm := eval(x)
			x[i] = xi
			g[i] = (fp - fm) / (hi - lo)
		}
	}

	x := b.Clamp(append([]float64(nil), x0...))
	fx := eval(x)
	g := make([]float64, d)
	grad(x, g)

	var sHist, yHist [][]float64
	var rhoHist []float64
	q := make([]float64, d)
	dir := make([]float64, d)

	for iter := 0; iter < maxIters; iter++ {
		// Two-loop recursion for the L-BFGS direction.
		copy(q, g)
		m := len(sHist)
		alphas := make([]float64, m)
		for i := m - 1; i >= 0; i-- {
			alphas[i] = rhoHist[i] * dot(sHist[i], q)
			axpy(q, -alphas[i], yHist[i])
		}
		scale := 1.0
		if m > 0 {
			ys := dot(yHist[m-1], sHist[m-1])
			yy := dot(yHist[m-1], yHist[m-1])
			if yy > 0 {
				scale = ys / yy
			}
		}
		for i := range q {
			q[i] *= scale
		}
		for i := 0; i < m; i++ {
			beta := rhoHist[i] * dot(yHist[i], q)
			axpy(q, alphas[i]-beta, sHist[i])
		}
		for i := range dir {
			dir[i] = -q[i]
		}
		// Ensure descent; otherwise fall back to steepest descent.
		if dot(dir, g) >= 0 {
			for i := range dir {
				dir[i] = -g[i]
			}
		}

		// Projected backtracking line search.
		step := 1.0
		var xNew []float64
		var fNew float64
		improved := false
		for ls := 0; ls < 30; ls++ {
			xNew = make([]float64, d)
			for i := range xNew {
				xNew[i] = x[i] + step*dir[i]
			}
			b.Clamp(xNew)
			fNew = eval(xNew)
			if fNew < fx-1e-4*step*math.Abs(dot(dir, g)) || fNew < fx-1e-12 {
				improved = true
				break
			}
			step *= 0.5
		}
		if !improved {
			break
		}

		gNew := make([]float64, d)
		grad(xNew, gNew)
		s := make([]float64, d)
		yv := make([]float64, d)
		for i := range s {
			s[i] = xNew[i] - x[i]
			yv[i] = gNew[i] - g[i]
		}
		if ys := dot(yv, s); ys > 1e-10 {
			sHist = append(sHist, s)
			yHist = append(yHist, yv)
			rhoHist = append(rhoHist, 1/ys)
			if len(sHist) > memory {
				sHist = sHist[1:]
				yHist = yHist[1:]
				rhoHist = rhoHist[1:]
			}
		}
		x, fx, g = xNew, fNew, gNew

		// Projected-gradient convergence test.
		pg := 0.0
		for i := range g {
			v := x[i] - g[i]
			if v < b.Lo[i] {
				v = b.Lo[i]
			}
			if v > b.Hi[i] {
				v = b.Hi[i]
			}
			pg = math.Max(pg, math.Abs(v-x[i]))
		}
		if pg < 1e-9 {
			break
		}
	}
	return Result{X: x, F: fx, Evals: evals}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(dst []float64, a float64, x []float64) {
	for i := range dst {
		dst[i] += a * x[i]
	}
}

// Multistart runs the given local optimizer from several random
// starting points (plus any provided seeds) and returns the best
// result, with Evals summed over every run. local is typically LBFGSB
// or NelderMead.
//
// All starting points are drawn from rng up front (so the rng stream
// is consumed identically for any worker count), then the local runs
// execute on up to `workers` goroutines (<= 0 selects GOMAXPROCS) and
// the winner is the lowest F at the lowest run index — the same
// tie-breaking the serial loop uses, making results bit-identical
// across worker counts. With workers > 1, f and local must be safe
// for concurrent calls.
func Multistart(f Objective, b Bounds, starts int, seeds [][]float64, rng *rand.Rand, workers int,
	local func(Objective, []float64, Bounds) Result) Result {
	d := len(b.Lo)
	x0s := make([][]float64, 0, len(seeds)+starts)
	for _, s := range seeds {
		x0s = append(x0s, append([]float64(nil), s...))
	}
	for k := 0; k < starts; k++ {
		x0 := make([]float64, d)
		for i := range x0 {
			x0[i] = b.Lo[i] + rng.Float64()*(b.Hi[i]-b.Lo[i])
		}
		x0s = append(x0s, x0)
	}

	results := make([]Result, len(x0s))
	par.ForEach(workers, len(x0s), func(i int) {
		results[i] = local(f, x0s[i], b)
	})

	best := Result{F: math.Inf(1)}
	evals := 0
	for _, r := range results {
		evals += r.Evals
		if r.F < best.F {
			best = r
		}
	}
	best.Evals = evals
	return best
}
