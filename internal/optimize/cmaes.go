package optimize

import (
	"math"
	"math/rand/v2"
	"sort"
)

// CMAESConfig controls the separable CMA-ES optimizer.
type CMAESConfig struct {
	// Lambda is the population size per generation (default
	// 4 + 3·ln d, the standard rule).
	Lambda int
	// Sigma0 is the initial step size in unit-cube coordinates
	// (default 0.25).
	Sigma0 float64
	// MaxEvals bounds objective evaluations (default 1000·d).
	MaxEvals int
	// Seed drives the sampling.
	Seed uint64
}

// CMAES minimizes f over the box with separable CMA-ES (Ros & Hansen
// 2008): a (μ/μ_w, λ) evolution strategy whose covariance is
// restricted to a diagonal, adapted per coordinate, with cumulative
// step-size adaptation. The diagonal restriction avoids eigen
// decompositions while retaining CMA's step-size control — a strong
// derivative-free baseline for the moderate dimensionalities the
// tuners work in. Out-of-box samples are clamped.
func CMAES(f Objective, x0 []float64, b Bounds, cfg CMAESConfig, rng *rand.Rand) Result {
	d := len(x0)
	lambda := cfg.Lambda
	if lambda <= 0 {
		lambda = 4 + int(3*math.Log(float64(d)))
	}
	if lambda < 4 {
		lambda = 4
	}
	mu := lambda / 2
	sigma := cfg.Sigma0
	if sigma <= 0 {
		sigma = 0.25
	}
	maxEvals := cfg.MaxEvals
	if maxEvals <= 0 {
		maxEvals = 1000 * d
	}

	// Recombination weights w_i ∝ ln(μ+1/2) − ln i.
	weights := make([]float64, mu)
	var wSum float64
	for i := 0; i < mu; i++ {
		weights[i] = math.Log(float64(mu)+0.5) - math.Log(float64(i+1))
		wSum += weights[i]
	}
	var muEff float64
	var w2 float64
	for i := range weights {
		weights[i] /= wSum
		w2 += weights[i] * weights[i]
	}
	muEff = 1 / w2

	// Standard CSA / covariance learning rates (separable variant
	// scales c_cov by (d+2)/3).
	dd := float64(d)
	cSigma := (muEff + 2) / (dd + muEff + 5)
	dSigma := 1 + 2*math.Max(0, math.Sqrt((muEff-1)/(dd+1))-1) + cSigma
	cc := (4 + muEff/dd) / (dd + 4 + 2*muEff/dd)
	c1 := (dd + 2) / 3 * 2 / ((dd+1.3)*(dd+1.3) + muEff)
	cMu := math.Min(1-c1, (dd+2)/3*2*(muEff-2+1/muEff)/((dd+2)*(dd+2)+muEff))
	chiN := math.Sqrt(dd) * (1 - 1/(4*dd) + 1/(21*dd*dd))

	mean := b.Clamp(append([]float64(nil), x0...))
	diag := make([]float64, d) // diagonal of C
	for i := range diag {
		diag[i] = 1
	}
	ps := make([]float64, d)
	pc := make([]float64, d)

	type indiv struct {
		x, z []float64
		f    float64
	}
	evals := 0
	best := Result{F: math.Inf(1)}
	eval := func(x []float64) float64 {
		evals++
		v := f(x)
		if v < best.F {
			best.F = v
			best.X = append([]float64(nil), x...)
		}
		return v
	}

	for evals+lambda <= maxEvals {
		pop := make([]indiv, lambda)
		for k := 0; k < lambda; k++ {
			z := make([]float64, d)
			x := make([]float64, d)
			for i := 0; i < d; i++ {
				z[i] = rng.NormFloat64()
				x[i] = mean[i] + sigma*math.Sqrt(diag[i])*z[i]
			}
			b.Clamp(x)
			pop[k] = indiv{x: x, z: z, f: eval(x)}
		}
		sort.SliceStable(pop, func(a, bb int) bool { return pop[a].f < pop[bb].f })

		// Recombine mean and the weighted z.
		oldMean := append([]float64(nil), mean...)
		zw := make([]float64, d)
		for i := 0; i < d; i++ {
			var m, zm float64
			for k := 0; k < mu; k++ {
				m += weights[k] * pop[k].x[i]
				zm += weights[k] * pop[k].z[i]
			}
			mean[i] = m
			zw[i] = zm
		}
		b.Clamp(mean)

		// Step-size path and adaptation.
		var psNorm2 float64
		for i := 0; i < d; i++ {
			ps[i] = (1-cSigma)*ps[i] + math.Sqrt(cSigma*(2-cSigma)*muEff)*zw[i]
			psNorm2 += ps[i] * ps[i]
		}
		psNorm := math.Sqrt(psNorm2)
		sigma *= math.Exp(cSigma / dSigma * (psNorm/chiN - 1))
		if sigma < 1e-9 {
			break
		}
		if sigma > 1 {
			sigma = 1
		}

		// Covariance (diagonal) paths and update.
		hsig := 0.0
		if psNorm/math.Sqrt(1-math.Pow(1-cSigma, 2*float64(evals/lambda+1)))/chiN < 1.4+2/(dd+1) {
			hsig = 1
		}
		for i := 0; i < d; i++ {
			pc[i] = (1-cc)*pc[i] + hsig*math.Sqrt(cc*(2-cc)*muEff)*(mean[i]-oldMean[i])/sigma
			var rankMu float64
			for k := 0; k < mu; k++ {
				rankMu += weights[k] * pop[k].z[i] * pop[k].z[i]
			}
			diag[i] = (1-c1-cMu)*diag[i] + c1*(pc[i]*pc[i]+(1-hsig)*cc*(2-cc)*diag[i]) + cMu*rankMu*diag[i]
			if diag[i] < 1e-12 {
				diag[i] = 1e-12
			}
		}
	}
	best.Evals = evals
	if best.X == nil {
		best.X = mean
		best.F = f(mean)
		best.Evals++
	}
	return best
}
