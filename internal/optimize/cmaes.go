package optimize

import (
	"math"
	"math/rand/v2"
	"sort"
)

// CMAESConfig controls the separable CMA-ES optimizer.
type CMAESConfig struct {
	// Lambda is the population size per generation (default
	// 4 + 3·ln d, the standard rule).
	Lambda int
	// Sigma0 is the initial step size in unit-cube coordinates
	// (default 0.25).
	Sigma0 float64
	// MaxEvals bounds objective evaluations (default 1000·d).
	MaxEvals int
	// Seed drives the sampling.
	Seed uint64
}

// CMAESState is the ask/tell form of the separable CMA-ES in CMAES:
// Ask samples one generation, Tell ranks it and adapts the
// distribution. The caller owns evaluation, which lets an external
// driver schedule, batch or journal the expensive calls. The
// generation draws never depend on the generation's own objective
// values, so driving Ask/Tell reproduces the blocking CMAES loop's
// rng sequence exactly.
type CMAESState struct {
	d, lambda, mu int
	maxEvals      int
	sigma         float64
	weights       []float64
	muEff         float64
	cSigma        float64
	dSigma        float64
	cc, c1, cMu   float64
	chiN          float64
	b             Bounds
	rng           *rand.Rand

	mean, diag, ps, pc []float64
	evals              int
	best               Result
	stopped            bool

	curX, curZ [][]float64 // generation awaiting Tell
}

// NewCMAES prepares a separable CMA-ES run starting at x0 inside b.
func NewCMAES(x0 []float64, b Bounds, cfg CMAESConfig, rng *rand.Rand) *CMAESState {
	d := len(x0)
	lambda := cfg.Lambda
	if lambda <= 0 {
		lambda = 4 + int(3*math.Log(float64(d)))
	}
	if lambda < 4 {
		lambda = 4
	}
	mu := lambda / 2
	sigma := cfg.Sigma0
	if sigma <= 0 {
		sigma = 0.25
	}
	maxEvals := cfg.MaxEvals
	if maxEvals <= 0 {
		maxEvals = 1000 * d
	}

	// Recombination weights w_i ∝ ln(μ+1/2) − ln i.
	weights := make([]float64, mu)
	var wSum float64
	for i := 0; i < mu; i++ {
		weights[i] = math.Log(float64(mu)+0.5) - math.Log(float64(i+1))
		wSum += weights[i]
	}
	var w2 float64
	for i := range weights {
		weights[i] /= wSum
		w2 += weights[i] * weights[i]
	}
	muEff := 1 / w2

	// Standard CSA / covariance learning rates (separable variant
	// scales c_cov by (d+2)/3).
	dd := float64(d)
	s := &CMAESState{
		d:        d,
		lambda:   lambda,
		mu:       mu,
		maxEvals: maxEvals,
		sigma:    sigma,
		weights:  weights,
		muEff:    muEff,
		cSigma:   (muEff + 2) / (dd + muEff + 5),
		cc:       (4 + muEff/dd) / (dd + 4 + 2*muEff/dd),
		c1:       (dd + 2) / 3 * 2 / ((dd+1.3)*(dd+1.3) + muEff),
		chiN:     math.Sqrt(dd) * (1 - 1/(4*dd) + 1/(21*dd*dd)),
		b:        b,
		rng:      rng,
		mean:     b.Clamp(append([]float64(nil), x0...)),
		diag:     make([]float64, d),
		ps:       make([]float64, d),
		pc:       make([]float64, d),
		best:     Result{F: math.Inf(1)},
	}
	s.dSigma = 1 + 2*math.Max(0, math.Sqrt((muEff-1)/(dd+1))-1) + s.cSigma
	s.cMu = math.Min(1-s.c1, (dd+2)/3*2*(muEff-2+1/muEff)/((dd+2)*(dd+2)+muEff))
	for i := range s.diag {
		s.diag[i] = 1
	}
	return s
}

// Lambda returns the population size per generation.
func (s *CMAESState) Lambda() int { return s.lambda }

// Mean returns the current distribution mean (not a copy).
func (s *CMAESState) Mean() []float64 { return s.mean }

// Evals returns the number of objective values consumed by Tell.
func (s *CMAESState) Evals() int { return s.evals }

// Done reports whether another full generation would exceed MaxEvals
// or the step size collapsed.
func (s *CMAESState) Done() bool {
	return s.stopped || s.evals+s.lambda > s.maxEvals
}

// Ask samples the next generation of λ points, clamped into the
// bounds, to be scored and returned via Tell. Calling Ask while a
// generation is outstanding or after Done panics.
func (s *CMAESState) Ask() [][]float64 {
	if s.curX != nil {
		panic("optimize: CMAESState.Ask before Tell of the previous generation")
	}
	if s.Done() {
		panic("optimize: CMAESState.Ask after Done")
	}
	s.curX = make([][]float64, s.lambda)
	s.curZ = make([][]float64, s.lambda)
	for k := 0; k < s.lambda; k++ {
		z := make([]float64, s.d)
		x := make([]float64, s.d)
		for i := 0; i < s.d; i++ {
			z[i] = s.rng.NormFloat64()
			x[i] = s.mean[i] + s.sigma*math.Sqrt(s.diag[i])*z[i]
		}
		s.b.Clamp(x)
		s.curX[k] = x
		s.curZ[k] = z
	}
	return s.curX
}

// Tell scores the generation returned by the last Ask (fs[k] is the
// objective value of that generation's k-th point) and performs the
// CMA-ES distribution update.
func (s *CMAESState) Tell(fs []float64) {
	if s.curX == nil {
		panic("optimize: CMAESState.Tell without Ask")
	}
	if len(fs) != s.lambda {
		panic("optimize: CMAESState.Tell with wrong generation size")
	}
	type indiv struct {
		x, z []float64
		f    float64
	}
	pop := make([]indiv, s.lambda)
	for k := 0; k < s.lambda; k++ {
		s.evals++
		if fs[k] < s.best.F {
			s.best.F = fs[k]
			s.best.X = append([]float64(nil), s.curX[k]...)
		}
		pop[k] = indiv{x: s.curX[k], z: s.curZ[k], f: fs[k]}
	}
	s.curX, s.curZ = nil, nil
	sort.SliceStable(pop, func(a, b int) bool { return pop[a].f < pop[b].f })

	// Recombine mean and the weighted z.
	oldMean := append([]float64(nil), s.mean...)
	zw := make([]float64, s.d)
	for i := 0; i < s.d; i++ {
		var m, zm float64
		for k := 0; k < s.mu; k++ {
			m += s.weights[k] * pop[k].x[i]
			zm += s.weights[k] * pop[k].z[i]
		}
		s.mean[i] = m
		zw[i] = zm
	}
	s.b.Clamp(s.mean)

	// Step-size path and adaptation.
	var psNorm2 float64
	for i := 0; i < s.d; i++ {
		s.ps[i] = (1-s.cSigma)*s.ps[i] + math.Sqrt(s.cSigma*(2-s.cSigma)*s.muEff)*zw[i]
		psNorm2 += s.ps[i] * s.ps[i]
	}
	psNorm := math.Sqrt(psNorm2)
	s.sigma *= math.Exp(s.cSigma / s.dSigma * (psNorm/s.chiN - 1))
	if s.sigma < 1e-9 {
		s.stopped = true
		return
	}
	if s.sigma > 1 {
		s.sigma = 1
	}

	// Covariance (diagonal) paths and update.
	dd := float64(s.d)
	hsig := 0.0
	if psNorm/math.Sqrt(1-math.Pow(1-s.cSigma, 2*float64(s.evals/s.lambda+1)))/s.chiN < 1.4+2/(dd+1) {
		hsig = 1
	}
	for i := 0; i < s.d; i++ {
		s.pc[i] = (1-s.cc)*s.pc[i] + hsig*math.Sqrt(s.cc*(2-s.cc)*s.muEff)*(s.mean[i]-oldMean[i])/s.sigma
		var rankMu float64
		for k := 0; k < s.mu; k++ {
			rankMu += s.weights[k] * pop[k].z[i] * pop[k].z[i]
		}
		s.diag[i] = (1-s.c1-s.cMu)*s.diag[i] + s.c1*(s.pc[i]*s.pc[i]+(1-hsig)*s.cc*(2-s.cc)*s.diag[i]) + s.cMu*rankMu*s.diag[i]
		if s.diag[i] < 1e-12 {
			s.diag[i] = 1e-12
		}
	}
}

// Finish seals the run: when no sample ever scored (MaxEvals below
// one generation, or every value was +Inf), the mean is evaluated as
// a last resort, exactly like the tail of the blocking CMAES.
func (s *CMAESState) Finish(f Objective) Result {
	s.best.Evals = s.evals
	if s.best.X == nil {
		s.best.X = s.mean
		s.best.F = f(s.mean)
		s.best.Evals++
	}
	return s.best
}

// CMAES minimizes f over the box with separable CMA-ES (Ros & Hansen
// 2008): a (μ/μ_w, λ) evolution strategy whose covariance is
// restricted to a diagonal, adapted per coordinate, with cumulative
// step-size adaptation. The diagonal restriction avoids eigen
// decompositions while retaining CMA's step-size control — a strong
// derivative-free baseline for the moderate dimensionalities the
// tuners work in. Out-of-box samples are clamped.
//
// It is a thin loop over CMAESState; drive that directly when the
// evaluations must be scheduled externally.
func CMAES(f Objective, x0 []float64, b Bounds, cfg CMAESConfig, rng *rand.Rand) Result {
	s := NewCMAES(x0, b, cfg, rng)
	fs := make([]float64, s.Lambda())
	for !s.Done() {
		for k, x := range s.Ask() {
			fs[k] = f(x)
		}
		s.Tell(fs)
	}
	return s.Finish(f)
}
