package linalg

import (
	"math"
	"testing"

	"repro/internal/sample"
)

// maxRelDiff returns the largest elementwise |a-b| / max(1, |a|, |b|).
func maxRelDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		scale := math.Max(1, math.Max(math.Abs(a[i]), math.Abs(b[i])))
		if d := math.Abs(a[i]-b[i]) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

// choleskyUnblockedRef runs the pre-blocking jitter ladder with the
// unchanged unblocked kernel — the reference for what Cholesky
// produced before the blocked path existed.
func choleskyUnblockedRef(a *Matrix, startJitter float64, maxTries int) (*Matrix, float64, bool) {
	dst := NewMatrix(a.Rows, a.Cols)
	jitter := 0.0
	for try := 0; try <= maxTries; try++ {
		if tryCholeskyInto(dst, a, jitter) {
			return dst, jitter, true
		}
		if jitter == 0 {
			jitter = startJitter
		} else {
			jitter *= 10
		}
	}
	return nil, jitter, false
}

// TestBlockedCholeskyEquivalenceSweep factors every size 1..200:
// the blocked kernel must agree with the unblocked one to 1e-9
// everywhere, and the dispatched CholeskyInto must be bit-identical
// to the pre-blocking output at or below blockedMin and bit-identical
// to the blocked kernel above it.
func TestBlockedCholeskyEquivalenceSweep(t *testing.T) {
	for n := 1; n <= 200; n++ {
		a := randomSPD(n, uint64(n)*7+1)
		ub := NewMatrix(n, n)
		if !tryCholeskyInto(ub, a, 0) {
			t.Fatalf("n=%d: unblocked kernel failed on SPD input", n)
		}
		bl := NewMatrix(n, n)
		if !tryCholeskyBlockedInto(bl, a, 0, 1) {
			t.Fatalf("n=%d: blocked kernel failed on SPD input", n)
		}
		if d := maxRelDiff(ub.Data, bl.Data); d > 1e-9 {
			t.Fatalf("n=%d: blocked vs unblocked rel diff %g > 1e-9", n, d)
		}
		got, jit, err := CholeskyInto(nil, a, 1e-10, 8)
		if err != nil || jit != 0 {
			t.Fatalf("n=%d: CholeskyInto err=%v jitter=%g", n, err, jit)
		}
		want := ub
		if n > blockedMin {
			want = bl
		}
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("n=%d: CholeskyInto not bit-identical to dispatched kernel at %d", n, i)
			}
		}
	}
}

// TestBlockedCholeskyJitterEscalation checks that a singular matrix
// above the blocked threshold escalates through the jitter ladder
// exactly like the pre-blocking code: same jitter, factor of
// A + jitter·I within 1e-9, and a reconstruction that matches the
// jittered input.
func TestBlockedCholeskyJitterEscalation(t *testing.T) {
	// Rank-deficient PSD: B Bᵀ with B of rank 40 ≪ n.
	n, r := 160, 40
	rng := sample.NewRNG(11)
	b := NewMatrix(n, r)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := Mul(b, b.T())
	got, jit, err := CholeskyInto(nil, a, 1e-10, 8)
	if err != nil {
		t.Fatalf("blocked jitter ladder failed: %v", err)
	}
	if jit == 0 {
		t.Fatalf("expected escalated jitter on a rank-%d matrix of order %d", r, n)
	}
	ref, refJit, ok := choleskyUnblockedRef(a, 1e-10, 8)
	if !ok {
		t.Fatalf("unblocked reference ladder failed")
	}
	if jit != refJit {
		t.Fatalf("blocked ladder used jitter %g, unblocked %g", jit, refJit)
	}
	if d := maxRelDiff(got.Data, ref.Data); d > 1e-9 {
		t.Fatalf("escalated factor rel diff %g > 1e-9", d)
	}
	// L Lᵀ must reconstruct A + jitter·I.
	recon := Mul(got, got.T())
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+jit)
	}
	if d := maxRelDiff(recon.Data, a.Data); d > 1e-8 {
		t.Fatalf("reconstruction rel diff %g > 1e-8", d)
	}
}

// TestBlockedCholeskyWorkersParity: tile tasks own disjoint tiles, so
// any worker count must produce bit-identical factors (workers=1≡N).
func TestBlockedCholeskyWorkersParity(t *testing.T) {
	for _, n := range []int{130, 192, 200, 321} {
		a := randomSPD(n, uint64(n))
		base := NewMatrix(n, n)
		if !tryCholeskyBlockedInto(base, a, 0, 1) {
			t.Fatalf("n=%d: serial blocked factorization failed", n)
		}
		for _, workers := range []int{2, 4, 8} {
			got := NewMatrix(n, n)
			if !tryCholeskyBlockedInto(got, a, 0, workers) {
				t.Fatalf("n=%d workers=%d: blocked factorization failed", n, workers)
			}
			for i := range got.Data {
				if got.Data[i] != base.Data[i] {
					t.Fatalf("n=%d: workers=%d differs from workers=1 at %d", n, workers, i)
				}
			}
		}
	}
}

// TestBlockedSolvesEquivalenceSweep: the forward solve is never
// blocked and must stay bit-identical to the reference loop at every
// size; the right-looking transpose solve must agree to 1e-9, and the
// dispatched SolveUpperTInto must match the pre-blocking loop below
// blockedMin bitwise and the blocked kernel above it.
func TestBlockedSolvesEquivalenceSweep(t *testing.T) {
	solveLowerRef := func(l *Matrix, b []float64) []float64 {
		n := l.Rows
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			s := b[i]
			row := l.Row(i)
			for k := 0; k < i; k++ {
				s -= row[k] * y[k]
			}
			y[i] = s / row[i]
		}
		return y
	}
	solveUpperTRef := func(l *Matrix, y []float64) []float64 {
		n := l.Rows
		x := make([]float64, n)
		for i := n - 1; i >= 0; i-- {
			s := y[i]
			for k := i + 1; k < n; k++ {
				s -= l.At(k, i) * x[k]
			}
			x[i] = s / l.At(i, i)
		}
		return x
	}
	for n := 1; n <= 200; n += 7 {
		a := randomSPD(n, uint64(n)+99)
		l, _, err := CholeskyInto(nil, a, 1e-10, 8)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rng := sample.NewRNG(uint64(n))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		refY := solveLowerRef(l, b)
		refX := solveUpperTRef(l, refY)
		blX := solveUpperTBlockedInto(l, refY, make([]float64, n))
		if d := maxRelDiff(refX, blX); d > 1e-9 {
			t.Fatalf("n=%d: blocked transpose solve rel diff %g > 1e-9", n, d)
		}
		gotY := SolveLowerInto(l, b, nil)
		for i := range gotY {
			if gotY[i] != refY[i] {
				t.Fatalf("n=%d: SolveLowerInto not bit-identical to reference at %d", n, i)
			}
		}
		gotX := SolveUpperTInto(l, refY, nil)
		want := refX
		if n > blockedMin {
			want = blX
		}
		for i := range gotX {
			if gotX[i] != want[i] {
				t.Fatalf("n=%d: SolveUpperTInto not bit-identical to dispatched kernel at %d", n, i)
			}
		}
	}
}

// TestBlockedSolvesAliasing: the blocked solves keep the documented
// may-alias contract (dst == b solves in place).
func TestBlockedSolvesAliasing(t *testing.T) {
	n := 180
	a := randomSPD(n, 5)
	l, _, err := CholeskyInto(nil, a, 1e-10, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := sample.NewRNG(3)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	sep := SolveLowerInto(l, b, nil)
	inPlace := append([]float64(nil), b...)
	SolveLowerInto(l, inPlace, inPlace)
	for i := range sep {
		if sep[i] != inPlace[i] {
			t.Fatalf("aliased forward solve differs at %d", i)
		}
	}
	sepX := SolveUpperTInto(l, sep, nil)
	inPlaceX := append([]float64(nil), sep...)
	SolveUpperTInto(l, inPlaceX, inPlaceX)
	for i := range sepX {
		if sepX[i] != inPlaceX[i] {
			t.Fatalf("aliased transpose solve differs at %d", i)
		}
	}
	// End-to-end residual: A·x ≈ b through the blocked path.
	x := CholSolveInto(l, b, nil)
	ax := MulVec(a, x)
	if d := maxRelDiff(ax, b); d > 1e-6 {
		t.Fatalf("CholSolve residual %g too large", d)
	}
}
