// Package linalg implements the small dense linear-algebra kernel the
// Gaussian-Process surrogate needs: row-major matrices, Cholesky
// factorization with jitter for near-singular kernels, and triangular
// solves. It is deliberately minimal — just what a GP with a few
// hundred training points requires — but numerically careful.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zero matrix with the given shape. It panics on
// non-positive dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product a*b. It panics on shape mismatch.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*x. It panics on shape
// mismatch.
func MulVec(m *Matrix, x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Dot returns the inner product of a and b. It panics on length
// mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Cholesky computes the lower-triangular Cholesky factor L of the
// symmetric positive-definite matrix a (a = L Lᵀ). If a is not
// numerically positive definite, increasing jitter (starting at
// startJitter, multiplied by 10 up to maxTries times) is added to the
// diagonal until the factorization succeeds. It returns the factor,
// the jitter actually used, and an error if factorization failed even
// at the largest jitter.
func Cholesky(a *Matrix, startJitter float64, maxTries int) (l *Matrix, jitter float64, err error) {
	return CholeskyInto(nil, a, startJitter, maxTries)
}

// SolveLower solves L y = b for y where L is lower triangular
// (forward substitution).
func SolveLower(l *Matrix, b []float64) []float64 {
	if len(b) != l.Rows {
		panic("linalg: SolveLower length mismatch")
	}
	return SolveLowerInto(l, b, nil)
}

// SolveUpperT solves Lᵀ x = y for x where L is lower triangular
// (backward substitution on the transpose).
func SolveUpperT(l *Matrix, y []float64) []float64 {
	if len(y) != l.Rows {
		panic("linalg: SolveUpperT length mismatch")
	}
	return SolveUpperTInto(l, y, nil)
}

// CholSolve solves A x = b given the lower Cholesky factor L of A.
func CholSolve(l *Matrix, b []float64) []float64 {
	return SolveUpperT(l, SolveLower(l, b))
}

// LogDetFromChol returns log|A| given A's lower Cholesky factor L:
// log|A| = 2 Σ log L_ii.
func LogDetFromChol(l *Matrix) float64 {
	var s float64
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}

// SymmetricFromUpper mirrors the upper triangle of m onto its lower
// triangle in place, enforcing exact symmetry after accumulation of
// rounding error.
func SymmetricFromUpper(m *Matrix) {
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			m.Set(j, i, m.At(i, j))
		}
	}
}
