// Scratch-reusing and incremental variants of the factorization and
// solve kernels. The GP surrogate's hyperparameter search evaluates
// the marginal likelihood hundreds of times per fit; the *Into
// variants let it reuse one set of buffers across all of them instead
// of allocating fresh matrices per evaluation, and CholAppend lets the
// BO engine extend a cached factor by one observation in O(n²) rather
// than refactorizing in O(n³). Every variant performs the exact
// floating-point operations of its allocating counterpart in the same
// order, so results are bit-identical.
package linalg

import (
	"fmt"
	"math"
)

// CholeskyInto is Cholesky writing the factor into dst, which is
// reused when it already has the right shape and allocated otherwise
// (dst may be nil). It returns the factor (== dst when reused), the
// jitter used, and an error if factorization failed at the largest
// jitter. dst must not alias a.
func CholeskyInto(dst, a *Matrix, startJitter float64, maxTries int) (l *Matrix, jitter float64, err error) {
	return CholeskyWorkersInto(dst, a, startJitter, maxTries, 1)
}

// CholeskyWorkersInto is CholeskyInto with the blocked path's tile
// parallelism spread over the given worker count (≤1 = serial; the
// result is identical for any worker count). Matrices of blockedMin
// rows or fewer always use the serial unblocked kernel, whose output
// is bit-identical to the pre-blocking implementation.
func CholeskyWorkersInto(dst, a *Matrix, startJitter float64, maxTries, workers int) (l *Matrix, jitter float64, err error) {
	if a.Rows != a.Cols {
		return nil, 0, fmt.Errorf("linalg: Cholesky requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if dst == nil || dst.Rows != a.Rows || dst.Cols != a.Cols {
		dst = NewMatrix(a.Rows, a.Cols)
	}
	if startJitter <= 0 {
		startJitter = 1e-10
	}
	if maxTries <= 0 {
		maxTries = 8
	}
	blocked := a.Rows > blockedMin
	jitter = 0
	for try := 0; try <= maxTries; try++ {
		ok := false
		if blocked {
			ok = tryCholeskyBlockedInto(dst, a, jitter, workers)
		} else {
			ok = tryCholeskyInto(dst, a, jitter)
		}
		if ok {
			return dst, jitter, nil
		}
		if jitter == 0 {
			jitter = startJitter
		} else {
			jitter *= 10
		}
	}
	return nil, jitter, fmt.Errorf("linalg: matrix not positive definite even with jitter %g", jitter)
}

// tryCholeskyInto factorizes a+jitter·I into dst, zeroing dst first.
// It reports whether every pivot stayed positive.
func tryCholeskyInto(dst, a *Matrix, jitter float64) bool {
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	n := a.Rows
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j) + jitter
		for k := 0; k < j; k++ {
			v := dst.At(j, k)
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return false
		}
		ljj := math.Sqrt(d)
		dst.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lrow := dst.Row(i)
			jrow := dst.Row(j)
			for k := 0; k < j; k++ {
				s -= lrow[k] * jrow[k]
			}
			dst.Set(i, j, s/ljj)
		}
	}
	return true
}

// SolveLowerInto is SolveLower writing into dst (allocated when nil,
// reused otherwise; may alias b — forward substitution reads b[i]
// before writing dst[i] and only reads already-written prefix slots).
func SolveLowerInto(l *Matrix, b, dst []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("linalg: SolveLowerInto length mismatch")
	}
	if dst == nil {
		dst = make([]float64, n)
	} else if len(dst) != n {
		panic("linalg: SolveLowerInto dst length mismatch")
	}
	// No blocked variant here on purpose: the direct loop already reads
	// L in one sequential pass and dst stays resident, so a panelled
	// version only adds bookkeeping (measured ~1.6x slower at n=2000 —
	// and this is the per-candidate hot path of the acquisition search).
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * dst[k]
		}
		dst[i] = s / row[i]
	}
	return dst
}

// SolveUpperTInto is SolveUpperT writing into dst (allocated when nil,
// reused otherwise; may alias y — backward substitution reads y[i]
// before writing dst[i] and only reads already-written suffix slots).
func SolveUpperTInto(l *Matrix, y, dst []float64) []float64 {
	n := l.Rows
	if len(y) != n {
		panic("linalg: SolveUpperTInto length mismatch")
	}
	if dst == nil {
		dst = make([]float64, n)
	} else if len(dst) != n {
		panic("linalg: SolveUpperTInto dst length mismatch")
	}
	if n > blockedMin {
		// Row-contiguous right-looking form; agrees to 1e-9 (not
		// bitwise) with the column-walking loop below.
		return solveUpperTBlockedInto(l, y, dst)
	}
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * dst[k]
		}
		dst[i] = s / l.At(i, i)
	}
	return dst
}

// CholSolveInto is CholSolve writing into dst, solving in place
// through dst (one buffer, zero allocations when dst is preallocated;
// dst may alias b).
func CholSolveInto(l *Matrix, b, dst []float64) []float64 {
	dst = SolveLowerInto(l, b, dst)
	return SolveUpperTInto(l, dst, dst)
}

// CholAppend extends the lower Cholesky factor L of an n×n matrix A
// to the factor of the bordered matrix [[A, b], [bᵀ, c]] in O(n²):
// the new row is the forward substitution L·r = b and the new pivot
// is sqrt(c + jitter − r·r). jitter must be the diagonal jitter the
// original factorization used, so the extension factors K + jitter·I
// exactly as a from-scratch Cholesky of the bordered matrix would —
// the result is bit-identical to refactorizing when the same jitter
// succeeds. l is not modified; a new (n+1)×(n+1) factor is returned.
// It fails (without escalating jitter) when the new pivot is not
// positive; callers fall back to a full factorization.
func CholAppend(l *Matrix, b []float64, c, jitter float64) (*Matrix, error) {
	n := l.Rows
	if l.Cols != n {
		return nil, fmt.Errorf("linalg: CholAppend requires a square factor, got %dx%d", l.Rows, l.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: CholAppend border length %d, factor order %d", len(b), n)
	}
	out := NewMatrix(n+1, n+1)
	// Copy only the lower triangle: the strict upper triangle of a
	// factor is zero and out starts zeroed, so this halves the bytes
	// moved — and, at large n, the fresh pages faulted in (the copy is
	// fault-bound past the point where the factor outgrows cache).
	for i := 0; i < n; i++ {
		copy(out.Row(i)[:i+1], l.Row(i)[:i+1])
	}
	row := out.Row(n)
	for j := 0; j < n; j++ {
		s := b[j]
		jrow := l.Row(j)
		for k := 0; k < j; k++ {
			s -= row[k] * jrow[k]
		}
		row[j] = s / jrow[j]
	}
	d := c + jitter
	for k := 0; k < n; k++ {
		d -= row[k] * row[k]
	}
	if d <= 0 || math.IsNaN(d) {
		return nil, fmt.Errorf("linalg: CholAppend pivot %g not positive", d)
	}
	row[n] = math.Sqrt(d)
	return out, nil
}
