// Cache-blocked variants of the factorization and solve kernels. The
// textbook kernels in scratch.go touch memory in patterns that fall
// out of cache once the kernel matrix outgrows L2 (~n=300 at 8 bytes
// per entry): the unblocked Cholesky re-reads two full row prefixes
// per inner element, and the transpose solve walks a column with
// stride n. The blocked right-looking Cholesky below factors the
// matrix tile by tile so the working set per step is a few tiles, and
// the right-looking transpose solve reads L row-contiguously.
//
// Numerical contract: the blocked Cholesky and transpose solve
// regroup the same floating-point sums that the unblocked kernels
// compute, so their results agree to relative 1e-9 but not bitwise.
// CholeskyInto / SolveUpperTInto therefore dispatch to the blocked
// path only above blockedMin rows; below it they run the unchanged
// unblocked kernels and stay bit-identical to the pre-blocking
// implementation. The forward solve (SolveLowerInto) is deliberately
// never blocked: its direct loop already streams L once, and a
// panelled version measured slower on the acquisition hot path. Tile
// tasks write disjoint tile sets, so results are independent of the
// worker count (workers=1 ≡ workers=N, like the rest of
// internal/par).
package linalg

import (
	"math"

	"repro/internal/par"
)

const (
	// cholTile is the blocked-Cholesky tile edge. 64×64 float64 tiles
	// are 32KiB — three of them (the destination tile and the two
	// panel operands) sit comfortably in a 256KiB L2.
	cholTile = 64
	// blockedMin is the matrix order above which the blocked kernels
	// engage. Below it the unblocked kernels are both faster (no tile
	// bookkeeping) and bit-identical to the pre-blocking code, which
	// the GP's fast-path tests pin.
	blockedMin = 128
)

// tryCholeskyBlockedInto factorizes a+jitter·I into dst with a
// right-looking blocked algorithm: per tile column, factor the
// diagonal tile, triangular-solve the panel below it, then subtract
// the panel's outer product from the trailing submatrix. The panel
// solve parallelizes over row tiles and the trailing update over tile
// pairs; every element is written by exactly one task with a fixed
// inner loop order, so the result is the same for any worker count.
// It reports whether every pivot stayed positive.
func tryCholeskyBlockedInto(dst, a *Matrix, jitter float64, workers int) bool {
	n := a.Rows
	// Load the lower triangle of a (plus jitter on the diagonal) into
	// dst; the factorization then runs in place. The strict upper
	// triangle is zeroed to match the unblocked kernel's output.
	for i := 0; i < n; i++ {
		di := dst.Row(i)
		ai := a.Row(i)
		copy(di[:i+1], ai[:i+1])
		di[i] += jitter
		for j := i + 1; j < n; j++ {
			di[j] = 0
		}
	}
	for j0 := 0; j0 < n; j0 += cholTile {
		j1 := min(j0+cholTile, n)
		// Factor the diagonal tile in place (same loop order as the
		// unblocked kernel, restricted to columns j0..j1; the tile
		// already holds A minus all earlier panels' contributions).
		for j := j0; j < j1; j++ {
			jrow := dst.Row(j)
			d := jrow[j]
			for k := j0; k < j; k++ {
				d -= jrow[k] * jrow[k]
			}
			if d <= 0 || math.IsNaN(d) {
				return false
			}
			ljj := math.Sqrt(d)
			jrow[j] = ljj
			for i := j + 1; i < j1; i++ {
				irow := dst.Row(i)
				s := irow[j]
				for k := j0; k < j; k++ {
					s -= irow[k] * jrow[k]
				}
				irow[j] = s / ljj
			}
		}
		if j1 == n {
			break
		}
		// Panel solve: rows j1..n-1 of columns j0..j1 become
		// L21 = A21·L11⁻ᵀ by per-row forward substitution. Rows are
		// independent — parallel over row tiles.
		nTiles := (n - j1 + cholTile - 1) / cholTile
		par.ForEach(workers, nTiles, func(t int) {
			i0 := j1 + t*cholTile
			i1 := min(i0+cholTile, n)
			for i := i0; i < i1; i++ {
				irow := dst.Row(i)
				for j := j0; j < j1; j++ {
					s := irow[j]
					jrow := dst.Row(j)
					for k := j0; k < j; k++ {
						s -= irow[k] * jrow[k]
					}
					irow[j] = s / jrow[j]
				}
			}
		})
		// Trailing update: A22 -= L21·L21ᵀ, lower triangle only,
		// parallel over the lower-triangular (ti, tj) tile pairs.
		// Each pair owns a disjoint tile of dst.
		pairs := nTiles * (nTiles + 1) / 2
		par.ForEach(workers, pairs, func(p int) {
			ti := int((math.Sqrt(float64(8*p+1)) - 1) / 2)
			for (ti+1)*(ti+2)/2 <= p {
				ti++
			}
			for ti*(ti+1)/2 > p {
				ti--
			}
			tj := p - ti*(ti+1)/2
			i0 := j1 + ti*cholTile
			i1 := min(i0+cholTile, n)
			jStart := j1 + tj*cholTile
			jEnd := min(jStart+cholTile, n)
			for i := i0; i < i1; i++ {
				irow := dst.Row(i)
				jmax := min(jEnd, i+1)
				for j := jStart; j < jmax; j++ {
					jrow := dst.Row(j)
					s := irow[j]
					for k := j0; k < j1; k++ {
						s -= irow[k] * jrow[k]
					}
					irow[j] = s
				}
			}
		})
	}
	return true
}

// solveUpperTBlockedInto solves Lᵀx = y right-looking: as soon as x[i]
// is known, its contribution L[i][j]·x[i] is subtracted from every
// remaining y[j], which reads L one contiguous row at a time instead
// of walking columns with stride n. The per-element sums accumulate in
// descending-k order (the unblocked kernel uses ascending), so results
// agree to 1e-9 rather than bitwise; SolveUpperTInto only dispatches
// here above blockedMin.
func solveUpperTBlockedInto(l *Matrix, y, dst []float64) []float64 {
	n := l.Rows
	if &dst[0] != &y[0] {
		copy(dst, y)
	}
	for i := n - 1; i >= 0; i-- {
		row := l.Row(i)
		xi := dst[i] / row[i]
		dst[i] = xi
		for j := 0; j < i; j++ {
			dst[j] -= row[j] * xi
		}
	}
	return dst
}
