package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sample"
)

// TestCholeskyIntoMatchesCholesky: reusing a dirty scratch matrix must
// produce a bit-identical factor to a fresh allocation.
func TestCholeskyIntoMatchesCholesky(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%12) + 1
		a := randomSPD(n, seed)
		want, wj, err := Cholesky(a, 0, 0)
		if err != nil {
			return false
		}
		// Poison the scratch so stale contents would be caught.
		dst := NewMatrix(n, n)
		for i := range dst.Data {
			dst.Data[i] = math.NaN()
		}
		got, gj, err := CholeskyInto(dst, a, 0, 0)
		if err != nil || got != dst || gj != wj {
			return false
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCholeskyIntoReallocates: nil or wrong-shaped dst is replaced.
func TestCholeskyIntoReallocates(t *testing.T) {
	a := randomSPD(4, 1)
	l, _, err := CholeskyInto(nil, a, 0, 0)
	if err != nil || l == nil || l.Rows != 4 {
		t.Fatalf("nil dst: %v %v", l, err)
	}
	small := NewMatrix(2, 2)
	l2, _, err := CholeskyInto(small, a, 0, 0)
	if err != nil || l2 == small || l2.Rows != 4 {
		t.Fatalf("wrong-shaped dst not reallocated: %v %v", l2, err)
	}
}

// TestSolveIntoMatchesAllocating: the Into solves are bit-identical to
// their allocating counterparts, including when solving in place.
func TestSolveIntoMatchesAllocating(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%10) + 1
		a := randomSPD(n, seed)
		l, _, err := Cholesky(a, 0, 0)
		if err != nil {
			return false
		}
		rng := sample.NewRNG(seed ^ 0x51a7e)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		wantY := SolveLower(l, b)
		wantX := SolveUpperT(l, wantY)
		wantS := CholSolve(l, b)

		dst := make([]float64, n)
		gotY := SolveLowerInto(l, b, dst)
		for i := range wantY {
			if gotY[i] != wantY[i] {
				return false
			}
		}
		gotX := SolveUpperTInto(l, gotY, gotY) // in place
		for i := range wantX {
			if gotX[i] != wantX[i] {
				return false
			}
		}
		inPlace := append([]float64(nil), b...)
		gotS := CholSolveInto(l, inPlace, inPlace)
		for i := range wantS {
			if gotS[i] != wantS[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCholAppendMatchesFullCholesky: factor the leading n×n block,
// append the final row/column, and the result must be bit-identical to
// factorizing the full (n+1)×(n+1) matrix directly.
func TestCholAppendMatchesFullCholesky(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%12) + 2 // full size >= 2 so the block is >= 1
		full := randomSPD(n, seed)
		want, jitter, err := Cholesky(full, 0, 0)
		if err != nil || jitter != 0 {
			return false
		}
		block := NewMatrix(n-1, n-1)
		for i := 0; i < n-1; i++ {
			copy(block.Row(i), full.Row(i)[:n-1])
		}
		lBlock, _, err := Cholesky(block, 0, 0)
		if err != nil {
			return false
		}
		border := make([]float64, n-1)
		for i := 0; i < n-1; i++ {
			border[i] = full.At(n-1, i)
		}
		got, err := CholAppend(lBlock, border, full.At(n-1, n-1), 0)
		if err != nil {
			return false
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCholAppendWithJitter: when the original factorization needed
// jitter, appending with the same jitter matches refactorizing the
// bordered matrix at that jitter level.
func TestCholAppendWithJitter(t *testing.T) {
	// Nearly singular block: two almost-identical rows.
	n := 4
	full := NewMatrix(n, n)
	v := [][]float64{
		{1, 0.999, 0.5, 0.2},
		{0.999, 1, 0.5, 0.2},
		{0.5, 0.5, 1, 0.3},
		{0.2, 0.2, 0.3, 1},
	}
	for i := range v {
		copy(full.Row(i), v[i])
	}
	block := NewMatrix(n-1, n-1)
	for i := 0; i < n-1; i++ {
		copy(block.Row(i), full.Row(i)[:n-1])
	}
	lBlock, jitter, err := Cholesky(block, 1e-10, 8)
	if err != nil {
		t.Fatal(err)
	}
	border := []float64{full.At(3, 0), full.At(3, 1), full.At(3, 2)}
	got, err := CholAppend(lBlock, border, full.At(3, 3), jitter)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: factor full + jitter·I directly (force the same jitter
	// by adding it to the diagonal and factorizing with none).
	ref := full.Clone()
	for i := 0; i < n; i++ {
		ref.Set(i, i, ref.At(i, i)+jitter)
	}
	want, wj, err := Cholesky(ref, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wj != 0 {
		t.Fatalf("reference needed extra jitter %g", wj)
	}
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("entry %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestCholAppendRejectsBadPivot: a border that makes the matrix
// indefinite must fail rather than produce NaNs.
func TestCholAppendRejectsBadPivot(t *testing.T) {
	a := randomSPD(3, 9)
	l, _, err := Cholesky(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// c = 0 with a large border makes the Schur complement negative.
	if _, err := CholAppend(l, []float64{100, 100, 100}, 0, 0); err == nil {
		t.Error("indefinite extension accepted")
	}
}

// TestCholAppendShapeErrors covers the defensive paths.
func TestCholAppendShapeErrors(t *testing.T) {
	if _, err := CholAppend(NewMatrix(2, 3), []float64{1, 1}, 1, 0); err == nil {
		t.Error("non-square factor accepted")
	}
	if _, err := CholAppend(NewMatrix(2, 2), []float64{1}, 1, 0); err == nil {
		t.Error("mismatched border accepted")
	}
}

// TestCholAppendDoesNotMutateInput: the original factor must be
// untouched (the BO engine shares factors across forked engines).
func TestCholAppendDoesNotMutateInput(t *testing.T) {
	a := randomSPD(3, 11)
	l, _, err := Cholesky(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), l.Data...)
	if _, err := CholAppend(l, []float64{0.1, 0.2, 0.3}, 5, 0); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if l.Data[i] != before[i] {
			t.Fatal("CholAppend mutated its input factor")
		}
	}
}
