package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sample"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 3)
	m.Set(1, 1, 5)
	if m.At(0, 2) != 3 || m.At(1, 1) != 5 || m.At(1, 0) != 0 {
		t.Fatal("At/Set broken")
	}
	r := m.Row(1)
	r[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row should be a view")
	}
	c := m.Clone()
	c.Set(0, 0, 100)
	if m.At(0, 0) == 100 {
		t.Fatal("Clone shares storage")
	}
	tt := m.T()
	if tt.Rows != 3 || tt.Cols != 2 || tt.At(2, 0) != 3 {
		t.Fatal("transpose broken")
	}
}

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatrix(0, 3) should panic")
		}
	}()
	NewMatrix(0, 3)
}

func TestMul(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 2)
	// a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if !almost(c.Data[i], w, 1e-12) {
			t.Fatalf("Mul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMulVec(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	y := MulVec(a, []float64{1, 1, 1})
	if !almost(y[0], 6, 1e-12) || !almost(y[1], 15, 1e-12) {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestDot(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); !almost(d, 32, 1e-12) {
		t.Fatalf("Dot = %v", d)
	}
}

func randomSPD(n int, seed uint64) *Matrix {
	rng := sample.NewRNG(seed)
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	// A = B Bᵀ + n*I is SPD.
	a := Mul(b, b.T())
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestCholeskyReconstruction(t *testing.T) {
	for _, n := range []int{1, 2, 5, 20} {
		a := randomSPD(n, uint64(n))
		l, jitter, err := Cholesky(a, 0, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if jitter != 0 {
			t.Errorf("n=%d: unexpected jitter %v for SPD matrix", n, jitter)
		}
		rec := Mul(l, l.T())
		for i := range a.Data {
			if !almost(rec.Data[i], a.Data[i], 1e-8) {
				t.Fatalf("n=%d: reconstruction error at %d: %v vs %v", n, i, rec.Data[i], a.Data[i])
			}
		}
	}
}

func TestCholeskyPropertySolve(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%10) + 1
		a := randomSPD(n, seed)
		rng := sample.NewRNG(seed ^ 0xabcdef)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		l, _, err := Cholesky(a, 0, 0)
		if err != nil {
			return false
		}
		x := CholSolve(l, b)
		ax := MulVec(a, x)
		for i := range b {
			if !almost(ax[i], b[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyJitterRecovery(t *testing.T) {
	// A singular matrix (rank 1) should succeed with jitter.
	n := 4
	a := NewMatrix(n, n)
	v := []float64{1, 2, 3, 4}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, v[i]*v[j])
		}
	}
	l, jitter, err := Cholesky(a, 1e-10, 12)
	if err != nil {
		t.Fatalf("jittered Cholesky failed: %v", err)
	}
	if jitter == 0 {
		t.Error("expected nonzero jitter for a singular matrix")
	}
	if l.Rows != n {
		t.Error("bad factor shape")
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, _, err := Cholesky(NewMatrix(2, 3), 0, 0); err == nil {
		t.Error("non-square matrix should error")
	}
}

func TestCholeskyFailsOnNegativeDefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, -5)
	a.Set(1, 1, -5)
	if _, _, err := Cholesky(a, 1e-10, 3); err == nil {
		t.Error("negative definite matrix should fail even with small jitter")
	}
}

func TestTriangularSolves(t *testing.T) {
	l := NewMatrix(3, 3)
	copy(l.Data, []float64{2, 0, 0, 1, 3, 0, 4, 5, 6})
	b := []float64{2, 7, 32}
	y := SolveLower(l, b)
	// 2y0=2 => y0=1; y0+3y1=7 => y1=2; 4+10+6y2=32 => y2=3
	want := []float64{1, 2, 3}
	for i := range want {
		if !almost(y[i], want[i], 1e-12) {
			t.Fatalf("SolveLower = %v", y)
		}
	}
	// Verify Lᵀx = y via reconstruction.
	x := SolveUpperT(l, y)
	lt := l.T()
	rec := MulVec(lt, x)
	for i := range y {
		if !almost(rec[i], y[i], 1e-10) {
			t.Fatalf("SolveUpperT residual at %d", i)
		}
	}
}

func TestLogDetFromChol(t *testing.T) {
	// A = diag(4, 9): |A| = 36, log|A| = log 36.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(1, 1, 9)
	l, _, err := Cholesky(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := LogDetFromChol(l); !almost(got, math.Log(36), 1e-10) {
		t.Fatalf("LogDet = %v, want %v", got, math.Log(36))
	}
}

func TestSymmetricFromUpper(t *testing.T) {
	m := NewMatrix(3, 3)
	copy(m.Data, []float64{1, 2, 3, 0, 4, 5, 0, 0, 6})
	SymmetricFromUpper(m)
	if m.At(1, 0) != 2 || m.At(2, 0) != 3 || m.At(2, 1) != 5 {
		t.Fatalf("not symmetric: %v", m.Data)
	}
}
