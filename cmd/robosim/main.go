// Command robosim runs the cluster simulator directly: one workload,
// one configuration, N repetitions — for exploring how a
// configuration behaves before (or instead of) tuning.
//
// Usage:
//
//	robosim -workload KMeans -dataset 2 -reps 5
//	robosim -workload TeraSort -set spark.executor.cores=8 \
//	        -set spark.executor.memory=24576 -set spark.serializer=kryo
//	robosim -workload PageRank -conf best.json     # values from robotune's memo/trace
//	robosim -workload PageRank -default            # Spark's out-of-the-box config
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/cli"
	"repro/internal/conf"
	"repro/internal/sample"
	"repro/internal/sparksim"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// setFlags accumulates repeated -set name=value flags.
type setFlags map[string]string

func (s setFlags) String() string { return fmt.Sprintf("%v", map[string]string(s)) }

func (s setFlags) Set(v string) error {
	name, value, err := cli.ParseSet(v)
	if err != nil {
		return err
	}
	s[name] = value
	return nil
}

func main() {
	sets := setFlags{}
	var (
		workload = flag.String("workload", "KMeans", "workload name (paper five + WordCount, SQLAggregation, TriangleCount)")
		dataset  = flag.Int("dataset", 1, "dataset index 1-3")
		confPath = flag.String("conf", "", "JSON file of parameter raw values (e.g. a memoized config)")
		useDef   = flag.Bool("default", false, "run Spark's default configuration")
		reps     = flag.Int("reps", 5, "repetitions")
		seed     = flag.Uint64("seed", 1, "noise seed")
		capSec   = flag.Float64("cap", 0, "execution time cap in seconds (0 = uncapped)")
		events   = flag.Bool("events", true, "print simulator events of the first run")
		plan     = flag.Bool("plan", false, "print the workload's stage plan and exit")
		stages   = flag.Bool("stages", false, "print a per-stage time breakdown of the first run")
		sweepP   = flag.String("sweep", "", "sweep this parameter across its range (holding the rest) and exit")
		params   = flag.Bool("params", false, "print the 44-parameter configuration space and exit")
	)
	flag.Var(sets, "set", "parameter override name=value (repeatable; categorical values by name)")
	flag.Parse()

	w, err := sparksim.WorkloadByName(*workload, *dataset-1)
	if err != nil {
		fatal(err)
	}
	if *plan {
		fmt.Print(w.Describe())
		return
	}
	space := conf.SparkSpace()
	if *params {
		fmt.Print(space.Describe())
		return
	}

	c, err := buildConfig(space, *confPath, *useDef, sets)
	if err != nil {
		fatal(err)
	}

	cl := sparksim.PaperCluster()
	limit := math.Inf(1)
	if *capSec > 0 {
		limit = *capSec
	}

	if *sweepP != "" {
		res, err := sweep.Run(sparksim.Backend{Cluster: cl}, w, c, *sweepP, sweep.Config{
			Reps: *reps, Seed: *seed, CapSeconds: *capSec,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("workload: %s\n\n", w.ID())
		fmt.Print(res.Render())
		return
	}

	fmt.Printf("workload: %s\n", w.ID())
	if ex, ok := sparksim.PackExecutors(cl, c); ok {
		fmt.Printf("layout  : %d executors x %d cores (%d slots), %.1f GB heap each, %d/node\n",
			ex.Count, ex.CoresEach, ex.TotalSlots, ex.HeapMB/1024, ex.PerNode)
	} else {
		fmt.Println("layout  : INFEASIBLE (no executor of this size fits on a node)")
	}

	var times []float64
	failures := 0
	for i := 0; i < *reps; i++ {
		var out sparksim.Outcome
		if i == 0 && *stages {
			out = sparksim.RunDetailed(cl, w, c, sample.NewRNG(*seed+uint64(i)*31), limit)
		} else {
			out = sparksim.Run(cl, w, c, sample.NewRNG(*seed+uint64(i)*31), limit)
		}
		status := "ok"
		switch {
		case out.OOM:
			status = "OOM"
			failures++
		case out.Infeasible:
			status = "infeasible"
			failures++
		case !out.Completed:
			status = "truncated"
			failures++
		default:
			times = append(times, out.Seconds)
		}
		fmt.Printf("run %2d  : %8.1f s  [%s]\n", i+1, out.Seconds, status)
		if i == 0 && *events && len(out.Events) > 0 {
			for _, e := range out.Events {
				fmt.Printf("          event: %s\n", e)
			}
		}
		if i == 0 && *stages && len(out.Breakdown) > 0 {
			fmt.Printf("\n%-16s %8s %6s %6s %9s %9s %9s %9s\n",
				"stage", "total", "tasks", "waves", "cpu/task", "disk/task", "net/task", "miss")
			for _, sb := range out.Breakdown {
				fmt.Printf("%-16s %7.1fs %6d %6d %8.2fs %8.2fs %8.2fs %8.2fs\n",
					sb.Name, sb.Seconds, sb.Tasks, sb.Waves,
					sb.ComputeSec, sb.DiskSec, sb.NetSec, sb.CacheMissSec)
			}
			fmt.Println()
		}
	}
	if len(times) > 0 {
		s := stats.Summarize(times)
		fmt.Printf("\ncompleted %d/%d:  mean %.1f s  median %.1f s  min %.1f s  max %.1f s\n",
			len(times), *reps, s.Mean, s.P50, s.Min, s.Max)
	} else {
		fmt.Printf("\nno run completed (%d failures)\n", failures)
		os.Exit(1)
	}
}

// buildConfig assembles the configuration from the default, an
// optional JSON values file, and -set overrides (applied in that
// order).
func buildConfig(space *conf.Space, confPath string, useDefault bool, sets setFlags) (conf.Config, error) {
	var c conf.Config
	var err error
	if useDefault {
		c = space.Default()
	} else {
		// Unless the Spark default is explicitly requested, start from
		// a reasonable tuned-ish baseline (the default's 1 GB
		// executors fail several workloads) and layer overrides on it.
		c, err = space.FromRaw(map[string]float64{
			conf.ExecutorCores:      8,
			conf.ExecutorMemory:     24576,
			conf.ExecutorInstances:  20,
			conf.DefaultParallelism: 200,
			conf.Serializer:         1,
		})
		if err != nil {
			return conf.Config{}, err
		}
	}
	if confPath != "" {
		if c, err = cli.LoadConfigValues(space, confPath); err != nil {
			return conf.Config{}, err
		}
	}
	return cli.ApplySets(space, c, sets)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
