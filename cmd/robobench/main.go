// Command robobench regenerates the paper's evaluation tables and
// figures (§5) on the simulated cluster.
//
// Usage:
//
//	robobench -exp all            # everything (slow)
//	robobench -exp fig3,fig4     # tuner quality + search cost
//	robobench -exp fig2 -full    # paper-scale Figure 2
//
// Experiments: fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 table2 default
// (comma-separated, or "all"). fig3/fig4/fig5/fig6/table2 share one
// comparison run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/tuners"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "experiments to run (comma separated, or 'all')")
		full    = flag.Bool("full", false, "paper-scale evaluation (5 repeats; slower)")
		seed    = flag.Uint64("seed", 1, "random seed")
		budget  = flag.Int("budget", 100, "tuning budget in evaluations")
		repeats = flag.Int("repeats", 0, "tuning sessions per dataset (0 = scale default)")
		outPath = flag.String("out", "", "also write a full Markdown report to this file (runs every experiment)")
		csvDir  = flag.String("csv", "", "write machine-readable CSVs (sessions, fig3, fig4, traces) into this directory")
		workers = flag.Int("workers", 0, "tuner compute parallelism (0 = all cores, 1 = serial; results are identical)")
		conc    = flag.Int("concurrent", 0, "campaign concurrency: tuning sessions scheduled at once over a shared evaluation pool (<= 1 = serial; results are identical)")
		faults  = flag.String("faults", "", "fault-injection plan for tuning evaluations: 'default', or execloss=,straggler=,stragglerfactor=,transient=,oom=,seed= (empty/off = no faults; quality measurement stays fault-free)")
		retries = flag.Int("retries", 0, "max re-evaluations of a transiently-failed configuration per session")
		lgrPath = flag.String("campaign-journal", "", "campaign ledger path for the comparison grid: a killed run resumes mid-grid (completed sessions reused, in-flight ones continued from their session journals)")
	)
	flag.Parse()

	plan, err := cli.ParseFaultPlan(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := experiments.Defaults()
	if *full {
		cfg = experiments.Full()
	}
	cfg.Seed = *seed
	cfg.Budget = *budget
	cfg.Workers = *workers
	cfg.Concurrency = *conc
	cfg.Faults = plan
	cfg.Retry = tuners.RetryPolicy{MaxRetries: *retries}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}
	if plan.Enabled() {
		fmt.Printf("fault injection: %s (retries %d)\n", plan, *retries)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	has := func(name string) bool { return all || want[name] }

	ran := 0
	start := time.Now()

	if *outPath != "" {
		// Report mode runs every experiment once and writes Markdown.
		section("Full report")
		comp := runComparison(cfg, *lgrPath)
		md := report.FullReport(cfg, comp)
		if err := os.WriteFile(*outPath, []byte(md), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "writing report:", err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s (%d bytes)\n", *outPath, len(md))
		fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
		return
	}

	if has("fig2") {
		section("Figure 2 (model comparison)")
		samples := 200
		fmt.Print(experiments.Fig2ModelComparison(cfg, samples).Render())
		ran++
	}

	needsComparison := has("fig3") || has("fig4") || has("fig5") || has("fig6") || has("table2") || *csvDir != ""
	if needsComparison {
		section("Comparison grid (4 tuners x 5 workloads x 3 datasets)")
		comp := runComparison(cfg, *lgrPath)
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, comp); err != nil {
				fmt.Fprintln(os.Stderr, "writing CSVs:", err)
				os.Exit(1)
			}
			fmt.Printf("CSVs written to %s\n\n", *csvDir)
		}
		if has("fig3") {
			rows := comp.Fig3()
			fmt.Print(experiments.RenderScaled("Figure 3 — best execution time scaled to RandomSearch (lower is better)", rows))
			for _, other := range []string{"BestConfig", "Gunther", "RandomSearch"} {
				mean, max := experiments.SummarizeScaled(rows, other)
				fmt.Printf("  ROBOTune vs %-12s: %.2fx mean, %.2fx max advantage\n", other, mean, max)
			}
			fmt.Println()
		}
		if has("fig4") {
			rows := comp.Fig4()
			fmt.Print(experiments.RenderScaled("Figure 4 — search cost scaled to RandomSearch (lower is better)", rows))
			for _, other := range []string{"BestConfig", "Gunther", "RandomSearch"} {
				mean, max := experiments.SummarizeScaled(rows, other)
				fmt.Printf("  ROBOTune vs %-12s: %.2fx mean, %.2fx max advantage\n", other, mean, max)
			}
			fmt.Println()
		}
		if has("fig5") {
			for _, w := range []string{"PageRank", "KMeans"} {
				fmt.Println(comp.Fig5(w).Render())
			}
		}
		if has("fig6") {
			fmt.Println(comp.Fig6("PageRank").Render("PageRank"))
		}
		if has("table2") {
			fmt.Println(experiments.RenderTable2(comp.Table2()))
		}
		ran++
	}

	if has("fig7") {
		section("Figure 7 (selection recall vs sample count)")
		fmt.Print(experiments.Fig7SelectionRecall(cfg, nil).Render())
		ran++
	}
	if has("fig8") {
		section("Figure 8 (sampling behavior)")
		fmt.Print(experiments.Fig8SamplingBehavior(cfg).Render())
		ran++
	}
	if has("fig9") {
		section("Figure 9 (response surface)")
		fmt.Print(experiments.Fig9ResponseSurface(cfg, nil, 0).Render())
		ran++
	}
	if has("default") {
		section("§5.2 default-configuration comparison")
		fmt.Print(experiments.RenderDefault(experiments.DefaultComparison(cfg)))
		ran++
	}
	if has("extended") {
		section("Extended comparison (extension tuners)")
		rows, _ := experiments.ExtendedComparison(cfg, nil)
		fmt.Print(experiments.RenderExtended(rows))
		ran++
	}
	if has("ablations") {
		section("Design-choice ablations")
		fmt.Print(experiments.Ablations(cfg).Render())
		ran++
	}
	if has("mapping") {
		section("Workload mapping (extension)")
		fmt.Print(experiments.RenderMapping(experiments.MappingExperiment(cfg)))
		ran++
	}
	if has("clustersim") {
		section("Cluster-scheduler backend (policy tuning grid)")
		cc := experiments.RunClusterComparison(cfg, nil)
		fmt.Print(experiments.RenderClusterComparison(cc))
		fmt.Printf("\n  mean gain over default policy: ROBOTune %.1f%%, RandomSearch %.1f%%\n",
			100*cc.GainOverDefault("ROBOTune"), 100*cc.GainOverDefault("RandomSearch"))
		ran++
	}
	if has("amortization") {
		section("§5.5 selection-cost amortization")
		for _, w := range []string{"PageRank", "KMeans"} {
			fmt.Println(experiments.RenderAmortization(w, experiments.AmortizationExperiment(cfg, w)))
		}
		ran++
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; have fig2..fig9, table2, default, extended, ablations, mapping, clustersim, amortization, all\n", *expFlag)
		os.Exit(2)
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}

// runComparison runs the shared tuner grid, durably when a campaign
// ledger path was given: a re-run after a crash (or SIGKILL) resumes
// mid-grid instead of starting over.
func runComparison(cfg experiments.Config, ledgerPath string) *experiments.Comparison {
	if ledgerPath == "" {
		return experiments.RunComparison(cfg, nil)
	}
	comp, info, err := experiments.RunComparisonDurable(cfg, nil, ledgerPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign journal:", err)
		os.Exit(1)
	}
	// Notices go to stderr so a resumed run's report stays
	// byte-identical to an uninterrupted one.
	if info.Resumed {
		fmt.Fprintf(os.Stderr, "campaign journal: resumed %s (%d tasks reused)\n", info.LedgerPath, info.Reused)
	}
	for _, f := range info.Failed {
		fmt.Fprintln(os.Stderr, "campaign journal: task failed:", f)
	}
	return comp
}

func section(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}

// writeCSVs dumps the comparison's machine-readable artifacts.
func writeCSVs(dir string, comp *experiments.Comparison) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(w *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	if err := write("sessions.csv", func(f *os.File) error { return comp.WriteSessionsCSV(f) }); err != nil {
		return err
	}
	if err := write("fig3_quality.csv", func(f *os.File) error {
		return experiments.WriteScaledCSV(f, comp.Fig3())
	}); err != nil {
		return err
	}
	if err := write("fig4_cost.csv", func(f *os.File) error {
		return experiments.WriteScaledCSV(f, comp.Fig4())
	}); err != nil {
		return err
	}
	return write("traces.csv", func(f *os.File) error { return comp.WriteTracesCSV(f) })
}
