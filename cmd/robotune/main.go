// Command robotune tunes a workload's configuration on a simulated
// backend with a chosen tuner, printing the best configuration found,
// the search cost and the convergence trace.
//
// Usage:
//
//	robotune -workload KMeans -dataset 1 -budget 100
//	robotune -workload PageRank -tuner BestConfig
//	robotune -backend clustersim -workload BatchETL           # 2nd backend
//	robotune -workload PageRank -dataset 3 -memo state.json   # reuse caches
//	robotune -workload TeraSort -faults default -retries 2    # faulty cluster
//	robotune -workload KMeans -journal kmeans.jnl             # crash-safe session
//
// Ctrl-C cancels the session gracefully: the best configuration found
// so far is reported. With -journal, the interrupted session can be
// resumed bit-identically by rerunning the same command.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"repro/internal/backend"
	_ "repro/internal/backend/backends"
	"repro/internal/cli"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/memo"
	"repro/internal/trace"
	"repro/internal/tuners"
)

func main() {
	var (
		backendN = flag.String("backend", "spark", "evaluation backend: "+strings.Join(backend.Names(), " | "))
		workload = flag.String("workload", "KMeans", "workload family (spark: PageRank | KMeans | ... ; clustersim: BatchETL | CIBuild | MLTrain | WebServing)")
		dataset  = flag.Int("dataset", 1, "dataset index 1-3 (Table 1: D1-D3)")
		tuner    = flag.String("tuner", "ROBOTune", "ROBOTune | BestConfig | Gunther | RandomSearch")
		budget   = flag.Int("budget", 100, "tuning budget in evaluations")
		seed     = flag.Uint64("seed", 1, "random seed")
		memoPath = flag.String("memo", "", "path to the memoization store (persists caches across runs)")
		capSec   = flag.Float64("cap", 0, "per-evaluation execution time limit in seconds (0 = backend default)")
		tracePth = flag.String("trace", "", "write the full session log (every evaluation) as JSON to this file")
		bestOut  = flag.String("best-out", "", "write the best configuration's raw values as JSON (readable by robosim -conf)")
		verbose  = flag.Bool("v", false, "print every non-default parameter of the best config")
		explain  = flag.Bool("explain", false, "print selection ranking, Hedge weights and config diff (ROBOTune only)")
		workers  = flag.Int("workers", 0, "tuner compute parallelism: goroutines for forest training, importance and acquisition search (0 = all cores, 1 = serial; results are identical)")
		refitBdg = flag.Float64("refit-budget", 0, "ROBOTune: cap GP hyperparameter-refit time to this fraction of elapsed wall clock, extending the factorization incrementally in between (0 = fixed every-5-evals cadence)")
		sparse   = flag.Bool("sparse", false, "ROBOTune: past -sparse-threshold observations, fit the GP on a local subset (nearest the incumbent + a uniform reservoir) instead of the full history")
		sparseAt = flag.Int("sparse-threshold", 0, "ROBOTune: observation count where -sparse kicks in (0 = default 512)")
		deadline = flag.Float64("deadline", 0, "per-evaluation deadline in simulated seconds, layered under the adaptive guard cap (0 = none)")
		retries  = flag.Int("retries", 0, "max re-evaluations of a transiently-failed configuration")
		faults   = flag.String("faults", "", "fault-injection plan: 'default', or execloss=,straggler=,stragglerfactor=,transient=,oom=,seed= (empty/off = no faults)")
		jrnPath  = flag.String("journal", "", "session journal file: every evaluation is committed before the tuner acts on it; if the file exists, the session resumes from it bit-identically (Ctrl-C leaves a resumable journal)")
		jrnSync  = flag.String("journal-sync", "always", "journal fsync policy: always | none (snapshots are always fsynced)")
		multiFid = flag.Bool("multifidelity", false, "run the BOHB multi-fidelity tuner (shorthand for -tuner BOHB): brackets start on cheap input-scale proxies and promote survivors toward the full workload")
		ladder   = flag.String("fidelity-ladder", "", "BOHB: comma-separated ascending fidelity ladder ending at 1, e.g. 0.111,0.333,1 (empty = default 1/9,1/3,1)")
		fidAxis  = flag.String("fidelity-axis", "input", "BOHB: workload dimension the ladder scales: input (data volumes) or stage (stage-plan prefix; usually the cheaper proxy for iterative workloads)")
		costAwre = flag.Bool("cost-aware", false, "divide positive acquisition scores by predicted evaluation cost (EI-per-second; applies to ROBOTune and BOHB)")
	)
	flag.Parse()
	if *multiFid {
		*tuner = "BOHB"
	}
	ladderVals, err := cli.ParseFidelityLadder(*ladder)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	bk, err := backend.Lookup(*backendN)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	w, err := bk.Workload(*workload, *dataset-1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v (backend %s tunes: %s)\n", err, bk.Name(), strings.Join(bk.Workloads(), ", "))
		os.Exit(2)
	}
	if *capSec <= 0 {
		*capSec = bk.DefaultCap()
	}

	store := memo.NewStore()
	if *memoPath != "" {
		store, err = memo.Load(*memoPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	tn, err := cli.BuildTunerOpts(*tuner, store, core.Options{
		Workers:         *workers,
		RefitBudget:     *refitBdg,
		SparseSurrogate: *sparse,
		SparseThreshold: *sparseAt,
		CostAware:       *costAwre,
		FidelityLadder:  ladderVals,
		FidelityAxis:    *fidAxis,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	plan, err := cli.ParseFaultPlan(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	space := bk.Space()
	ev, err := bk.NewEvaluator(w, *seed, *capSec, plan)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var obj tuners.Objective = ev
	var recorder *trace.Recorder
	if *tracePth != "" {
		ide, ok := ev.(interface {
			backend.Evaluator
			backend.Identifiable
		})
		if !ok {
			fmt.Fprintf(os.Stderr, "backend %s evaluator cannot record traces (no workload identity)\n", bk.Name())
			os.Exit(2)
		}
		recorder = trace.NewRecorder(ide)
		obj = recorder
	}

	// Durable session journal: resumes if the file already holds this
	// session's records, starts fresh otherwise.
	var jn *journal.Journal
	if *jrnPath != "" {
		policy := journal.SyncAlways
		switch *jrnSync {
		case "always":
		case "none":
			policy = journal.SyncNone
		default:
			fmt.Fprintf(os.Stderr, "unknown -journal-sync %q (always | none)\n", *jrnSync)
			os.Exit(2)
		}
		jn, err = journal.Open(*jrnPath, journal.Meta{
			Seed:      *seed,
			Budget:    *budget,
			Workload:  w.WorkloadName(),
			Dataset:   w.DatasetName(),
			Tuner:     tn.Name(),
			Cap:       *capSec,
			Deadline:  *deadline,
			Retries:   *retries,
			Faults:    plan.String(),
			SpaceHash: space.Fingerprint(),
		}, policy)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer jn.Close()
		if jn.Resumed() {
			fmt.Printf("resuming from journal %s: %d committed evaluations to replay\n", *jrnPath, jn.ReplayPending())
			if rec := jn.Recovery(); rec.Truncated {
				fmt.Printf("journal recovery: truncated a torn tail (%d bytes, %s); committed records are intact\n",
					rec.TruncatedBytes, rec.Reason)
			}
		}
	}

	// Ctrl-C cancels the session: the tuner unwinds within one
	// evaluation and reports the best-so-far. With -journal set the
	// interrupted session stays resumable — rerun the same command to
	// continue it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("tuning %s/%s on %s with %s (budget %d, cap %.0fs",
		w.WorkloadName(), w.DatasetName(), bk.Name(), tn.Name(), *budget, *capSec)
	if plan.Enabled() {
		fmt.Printf(", faults %s", plan)
	}
	fmt.Println(")")
	res := tn.Run(tuners.NewSession(obj, space, tuners.Request{
		Ctx:      ctx,
		Budget:   *budget,
		Seed:     *seed,
		Deadline: *deadline,
		Retry:    tuners.RetryPolicy{MaxRetries: *retries},
		Journal:  jn,
	}))
	if jn != nil {
		if err := jn.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "journal degraded (campaign unaffected): %v\n", err)
		}
		if reason := jn.Diverged(); reason != "" {
			fmt.Fprintf(os.Stderr, "journal replay diverged (%s); stale tail truncated, session continued live\n", reason)
		}
		if res.Cancelled {
			fmt.Printf("journal %s holds %d committed evaluations; rerun the same command to resume\n", *jrnPath, jn.Trials())
		}
	}
	if res.Cancelled {
		fmt.Println("\ninterrupted: reporting the best configuration found so far")
	}
	if res.Failures.Failed > 0 || res.Failures.Retries > 0 {
		f := res.Failures
		fmt.Printf("robustness: %d failed (%d OOM, %d infeasible), %d transient, %d retries\n",
			f.Failed, f.OOM, f.Infeasible, f.Transient, f.Retries)
	}

	if recorder != nil {
		sess := recorder.Finish(tn.Name(), *budget, *seed, res)
		if err := sess.Save(*tracePth); err != nil {
			fmt.Fprintln(os.Stderr, "saving trace:", err)
			os.Exit(1)
		}
		fmt.Printf("session trace (%d evaluations) saved to %s\n", len(sess.Records), *tracePth)
	}

	if code := cli.ExitCode(res); code != 0 {
		fmt.Println("no completing configuration found within budget")
		os.Exit(code)
	}

	fmt.Printf("\nbest execution time : %8.1f s (observed during search)\n", res.BestSeconds)
	if m, ok := ev.(backend.Measurer); ok {
		fmt.Printf("verified (5 runs)   : %8.1f s\n", m.Measure(res.Best, 5, *seed*31+7))
	}
	fmt.Printf("tuning evaluations  : %8d\n", res.Evals)
	fmt.Printf("search cost         : %8.0f s (simulated)\n", res.SearchCost)
	if res.SelectionEvals > 0 {
		fmt.Printf("selection (one-time): %8d evals, %.0f s\n", res.SelectionEvals, res.SelectionCost)
	}
	if len(res.SelectedParams) > 0 {
		fmt.Printf("selected parameters : %s\n", strings.Join(res.SelectedParams, ", "))
	}

	fmt.Println("\nbest configuration (tuned parameters):")
	printConfig(space, res.Best, res.SelectedParams, *verbose)

	if *explain {
		if rt, ok := tn.(*core.ROBOTune); ok {
			fmt.Println("\n--- session explanation ---")
			fmt.Print(rt.Explain(space, res))
		}
	}

	// Convergence trace: running minimum every 10 iterations. A
	// session cancelled during selection has no tuning trace. Proxy
	// (reduced-fidelity) observations are excluded — their seconds
	// measure a scaled-down workload, not the real objective.
	if len(res.Trace) > 0 {
		fmt.Println("\nconvergence (running min):")
		runMin := math.Inf(1)
		for i, v := range res.Trace {
			if (len(res.Proxy) <= i || !res.Proxy[i]) && v < runMin {
				runMin = v
			}
			if (i+1)%10 == 0 || i == len(res.Trace)-1 {
				if math.IsInf(runMin, 1) {
					fmt.Printf("  iter %3d:     n/a (proxy evaluations only so far)\n", i+1)
				} else {
					fmt.Printf("  iter %3d: %7.1f s\n", i+1, runMin)
				}
			}
		}
	}

	if *bestOut != "" {
		if err := cli.SaveConfigValues(res.Best, *bestOut); err != nil {
			fmt.Fprintln(os.Stderr, "saving best config:", err)
			os.Exit(1)
		}
		fmt.Printf("\nbest configuration saved to %s\n", *bestOut)
	}
	// A cancelled journaled session skips the memo save: the store may
	// hold a partial selection outcome, and persisting it would hand the
	// resume a selection-cache hit the uninterrupted run never had —
	// breaking bit-identical resume. The resumed session re-derives and
	// saves the store when it completes.
	if *memoPath != "" && !(res.Cancelled && jn != nil) {
		if err := store.Save(*memoPath); err != nil {
			fmt.Fprintln(os.Stderr, "saving memo store:", err)
			os.Exit(1)
		}
		fmt.Printf("\nmemoization store saved to %s\n", *memoPath)
	}
}

func printConfig(space *conf.Space, c conf.Config, selected []string, verbose bool) {
	show := map[string]bool{}
	for _, p := range selected {
		show[p] = true
	}
	def := space.Default()
	names := space.Names()
	sort.Strings(names)
	for _, n := range names {
		p, _ := space.Param(n)
		if !show[n] {
			if !verbose || c.Raw(n) == def.Raw(n) {
				continue
			}
		}
		fmt.Printf("  %-44s = %s\n", n, p.FormatRaw(c.Raw(n)))
	}
}
