// Command robotuned serves tuning sessions over HTTP: a long-running
// daemon hosting many concurrent journal-backed ask/tell sessions.
// Clients create a session from a JSON spec, pull configuration
// proposals, evaluate them on whatever system they are tuning, and
// report the outcomes back; every observation is committed to the
// session's journal before the tuner acts on it.
//
// Usage:
//
//	robotuned -addr 127.0.0.1:7077 -journal-dir /var/lib/robotuned
//	robotuned -addr 127.0.0.1:0                  # ephemeral, random port
//	robotuned -tenant-sessions 8 -tenant-evals-per-sec 200
//
// The daemon prints "robotuned listening on http://HOST:PORT" once the
// listener is up (scripts parse this line when using port 0). SIGINT
// or SIGTERM starts a graceful drain bounded by -drain-timeout: new
// sessions are rejected with 503 "draining" and /healthz flips to 503
// (so load balancers stop routing here) while live sessions keep
// serving; once in-flight traffic settles, every live session gets a
// shutdown snapshot, all journals are fsynced and closed, and the
// process exits 0. Restarting on the same -journal-dir resumes every
// session bit-identically; see docs/SERVICE.md for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "repro/internal/backend/backends"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7077", "listen address (port 0 picks a free port)")
		journalDir  = flag.String("journal-dir", "", "directory for session specs and journals; empty = ephemeral sessions (no durability, no eviction)")
		shards      = flag.Int("shards", 16, "session table stripe count")
		maxSessions = flag.Int("max-sessions", 0, "global live-session cap (0 = unlimited)")
		tenantSess  = flag.Int("tenant-sessions", 0, "live-session cap per tenant (0 = unlimited)")
		maxObs      = flag.Int("max-observations", 0, "per-session cap on evaluated observations; past it observations answer 409 max_observations (0 = unlimited)")
		tenantRate  = flag.Float64("tenant-evals-per-sec", 0, "observation rate limit per tenant (0 = unlimited)")
		tenantBurst = flag.Int("tenant-burst", 0, "observation token-bucket depth (0 = 2x rate, floor one max batch)")
		idleTTL     = flag.Duration("idle-ttl", 15*time.Minute, "evict sessions untouched this long (journal-backed only; 0 = never)")
		evictEvery  = flag.Duration("evict-every", 0, "eviction janitor period (0 = idle-ttl/4)")
		drainWait   = flag.Duration("drain-timeout", 10*time.Second, "graceful-drain bound: how long in-flight session traffic may settle after SIGTERM before shutdown is forced")
		propSlots   = flag.Int("propose-slots", 0, "bound concurrent propose computations (surrogate refit + acquisition search) across sessions; specs with priority \"latency\" overtake queued bulk work (0 = unbounded)")
	)
	flag.Parse()

	srv := server.New(server.Options{
		JournalDir:        *journalDir,
		Shards:            *shards,
		MaxSessions:       *maxSessions,
		TenantSessions:    *tenantSess,
		MaxObservations:   *maxObs,
		TenantEvalsPerSec: *tenantRate,
		TenantBurst:       *tenantBurst,
		IdleTTL:           *idleTTL,
		EvictEvery:        *evictEvery,
		ProposeSlots:      *propSlots,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("robotuned listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go srv.Janitor(ctx)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain, bounded by -drain-timeout: flip into draining
	// mode first (creates answer 503 "draining", /healthz answers 503
	// so load balancers stop routing here) while live sessions keep
	// serving, wait for in-flight traffic to settle, then stop the
	// listener and snapshot + fsync + close every session journal.
	fmt.Println("robotuned: draining")
	srv.StartDrain()
	deadline := time.Now().Add(*drainWait)
	for srv.InFlight() > 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	drainCtx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, err)
	}
	srv.Shutdown()
	fmt.Println("robotuned: drained; all sessions suspended")
}
