package repro

// Large-n surrogate scaling benchmarks behind BENCH_gp_scale.json:
// exact GP fit/extend/suggest at n in {500..10000} (blocked Cholesky
// underneath), plus the sparse local-subset path at the default 512
// threshold. `make bench-gp-scale` runs the small sizes; set
// ROBOTUNE_BENCH_FULL=1 to add n=5000 and n=10000 (the exact rows
// take minutes there — that is the point of the sparse path).

import (
	"fmt"
	"math"
	"os"
	"testing"

	"repro/internal/bo"
	"repro/internal/gp"
	"repro/internal/sample"
)

func scaleBenchData(n, d int, seed uint64) ([][]float64, []float64) {
	rng := sample.NewRNG(seed)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		s := 0.0
		for j := range row {
			dv := row[j] - 0.5
			s += dv * dv
		}
		y[i] = s + 0.05*math.Sin(10*row[0]) + 0.01*rng.NormFloat64()
	}
	return x, y
}

var scaleParams = gp.Params{LogVariance: 0, LogLength: math.Log(0.4), LogNoise: math.Log(1e-4)}

func scaleSizes() []int {
	if os.Getenv("ROBOTUNE_BENCH_FULL") != "" {
		return []int{500, 1000, 2000, 5000, 10000}
	}
	return []int{500, 1000, 2000}
}

func scaleGPConfig(sparse bool) gp.Config {
	cfg := gp.DefaultConfig()
	cfg.FitHyper = false
	cfg.Init = scaleParams
	if sparse {
		cfg.SparseThreshold = bo.DefaultSparseThreshold
	}
	return cfg
}

func BenchmarkGPScaleFit(b *testing.B) {
	for _, mode := range []string{"exact", "sparse"} {
		for _, n := range scaleSizes() {
			b.Run(fmt.Sprintf("%s/n=%d", mode, n), func(b *testing.B) {
				x, y := scaleBenchData(n, 8, 42)
				cfg := scaleGPConfig(mode == "sparse")
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := gp.Fit(x, y, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkGPScaleExtend(b *testing.B) {
	for _, mode := range []string{"exact", "sparse"} {
		for _, n := range scaleSizes() {
			b.Run(fmt.Sprintf("%s/n=%d", mode, n), func(b *testing.B) {
				x, y := scaleBenchData(n+1, 8, 42)
				cfg := scaleGPConfig(mode == "sparse")
				g, err := gp.Fit(x[:n], y[:n], cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := g.Extend(x, y); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkGPScaleSuggest(b *testing.B) {
	for _, mode := range []string{"exact", "sparse"} {
		for _, n := range scaleSizes() {
			b.Run(fmt.Sprintf("%s/n=%d", mode, n), func(b *testing.B) {
				x, y := scaleBenchData(n, 8, 42)
				cfg := bo.DefaultConfig()
				cfg.Seed = 7
				cfg.GP.FitHyper = false
				cfg.GP.Init = scaleParams
				if mode == "sparse" {
					cfg.Sparse = true
				}
				e := bo.New(8, cfg)
				for i := range x {
					e.Tell(x[i], y[i])
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					u, err := e.Suggest()
					if err != nil {
						b.Fatal(err)
					}
					s := 0.0
					for j := range u {
						dv := u[j] - 0.5
						s += dv * dv
					}
					e.Tell(u, s)
				}
			})
		}
	}
}
