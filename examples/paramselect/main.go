// Parameter selection: run ROBOTune's Random-Forest importance
// analysis standalone (§3.3) and inspect the full ranking — which of
// the 44 Spark parameters actually matter for a workload, with
// collinear groups permuted jointly, and how the linear models the
// paper rejects would have fared on the same data (Figure 2's
// premise).
//
//	go run ./examples/paramselect
package main

import (
	"fmt"
	"log"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/linmodel"
	"repro/internal/sample"
	"repro/internal/stats"

	// Register the built-in backends with the registry.
	_ "repro/internal/backend/backends"
)

func main() {
	space := conf.SparkSpace()
	b, err := backend.Lookup("spark")
	if err != nil {
		log.Fatal(err)
	}
	workload, err := b.Workload("TeraSort", 1)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := b.NewEvaluator(workload, 17, 480, backend.FaultPlan{})
	if err != nil {
		log.Fatal(err)
	}

	// Collect the paper's 100 generic LHS samples once and reuse them
	// for both the RF selection and the linear-model comparison.
	design := sample.LHS(100, space.Dim(), sample.NewRNG(17))
	x := make([][]float64, len(design))
	y := make([]float64, len(design))
	for i, u := range design {
		x[i] = u
		y[i] = ev.EvaluateSpec(space.Decode(u), backend.EvalSpec{}).Seconds
	}

	rt := core.New(nil, core.Options{})
	sel, err := rt.SelectFromData(space, x, y, 17)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (%d LHS samples, RF OOB R² = %.3f)\n\n",
		workload.WorkloadName()+"/"+workload.DatasetName(), sel.Samples, sel.OOBR2)
	fmt.Println("importance ranking (grouped MDA, mean OOB-R² drop over 10 permutations):")
	for i, g := range sel.Ranking {
		if i >= 12 {
			fmt.Printf("  ... %d more groups below the noise floor\n", len(sel.Ranking)-i)
			break
		}
		marker := " "
		if g.Drop >= 0.05 {
			marker = "*" // clears the paper's 0.05 threshold
		}
		fmt.Printf("  %s %2d. %-28s drop=%7.4f  members=%v\n", marker, i+1, g.Name, g.Drop, g.Members)
	}
	fmt.Printf("\nselected for tuning (%d parameters): %v\n", len(sel.Params), sel.Params)

	// Figure 2's point: a Lasso on the same data explains far less of
	// the configuration-performance relationship than the forest.
	lasso := linmodel.Fit(x, y, linmodel.LassoDefaults())
	fmt.Printf("\nfor comparison, Lasso training R² on the same samples: %.3f\n",
		stats.R2(y, lasso.PredictAll(x)))
	fmt.Println("(tree ensembles capture the non-linear, interaction-heavy response;")
	fmt.Println(" linear models cannot — the reason §3.3 chooses Random Forests)")
}
