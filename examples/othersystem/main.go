// Other systems: ROBOTune on a non-Spark target. §4 notes the
// framework is modular — applying it to another system only needs a
// configuration space and an objective. This example tunes a
// PostgreSQL-like key-value store model defined entirely here: the
// space comes from a JSON definition (conf.ParseSpace) and the
// objective is a plain Go function wrapped in tuners.FuncObjective.
//
//	go run ./examples/othersystem
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/tuners"
)

// spaceJSON defines a small database-flavored configuration space.
const spaceJSON = `{
  "system": "kvstore",
  "params": [
    {"name": "buffer_pool_mb", "type": "int", "min": 64, "max": 16384,
     "log": true, "default": 128, "unit": "MB"},
    {"name": "wal_sync", "type": "categorical",
     "choices": ["off", "normal", "paranoid"], "default": "normal"},
    {"name": "compaction_threads", "type": "int", "min": 1, "max": 16, "default": 2},
    {"name": "bloom_bits_per_key", "type": "int", "min": 2, "max": 20, "default": 10},
    {"name": "compress_sstables", "type": "bool", "default": true},
    {"name": "memtable_mb", "type": "int", "min": 16, "max": 2048, "log": true, "default": 64, "unit": "MB"},
    {"name": "checkpoint_interval_s", "type": "int", "min": 5, "max": 600, "log": true, "default": 60, "unit": "s"},
    {"name": "read_ahead_kb", "type": "int", "min": 0, "max": 1024, "default": 128, "unit": "KB"}
  ]
}`

// benchmarkSeconds is the pretend benchmark: the time to run a fixed
// mixed read/write workload against the store under configuration c.
// The shape is multi-modal with interactions, like real storage
// engines: cache hit rate saturates, compaction threads trade off
// against write stalls, paranoid WAL syncing is slow but "off" risks
// recovery work.
func benchmarkSeconds(c conf.Config) (float64, bool) {
	buffer := float64(c.Int("buffer_pool_mb"))
	memtable := float64(c.Int("memtable_mb"))
	threads := float64(c.Int("compaction_threads"))
	bloom := float64(c.Int("bloom_bits_per_key"))
	checkpoint := float64(c.Int("checkpoint_interval_s"))
	readAhead := float64(c.Int("read_ahead_kb"))

	// Reads: cache misses fall off with buffer pool size; bloom
	// filters trim useless SSTable probes up to a point.
	hitRate := 1 - math.Exp(-buffer/2048)
	missCost := (1 - hitRate) * 120
	probeCost := 25 * math.Exp(-bloom/6)
	readSec := 30 + missCost + probeCost - 4*math.Log1p(readAhead/64)

	// Writes: a bigger memtable batches better until flushes stall
	// compaction; more threads absorb that, but steal CPU from reads.
	flushRate := 2048 / memtable
	stall := math.Max(0, flushRate-threads) * 6
	cpuSteal := threads * 1.5
	writeSec := 40 + stall + cpuSteal

	switch c.Choice("wal_sync") {
	case "paranoid":
		writeSec *= 1.8
	case "off":
		writeSec *= 0.9
		readSec += 10 // recovery replays on crash-restart cycles
	}
	// Frequent checkpoints add overhead; rare ones grow recovery work.
	writeSec += 120/checkpoint + checkpoint/60

	total := readSec + writeSec
	// The buffer pool and memtable share RAM: oversubscription fails.
	if buffer+memtable > 17000 {
		return total, false
	}
	return total, true
}

func main() {
	space, err := conf.ParseSpace([]byte(spaceJSON))
	if err != nil {
		log.Fatal(err)
	}
	obj := &tuners.FuncObjective{
		Fn:       benchmarkSeconds,
		Cap:      480,
		Workload: "kvstore-mixed",
		Dataset:  "100GB",
	}

	rt := core.New(nil, core.Options{GenericSamples: 60})
	res := rt.Tune(obj, space, 60, 7)
	if !res.Found {
		log.Fatal("nothing found")
	}

	defSec, _ := benchmarkSeconds(space.Default())
	fmt.Printf("system default : %6.1f s\n", defSec)
	fmt.Printf("tuned          : %6.1f s (%.2fx speedup, %d evaluations)\n",
		res.BestSeconds, defSec/res.BestSeconds, res.Evals+res.SelectionEvals)
	fmt.Println("\nimportant parameters found:")
	for _, p := range res.SelectedParams {
		param, _ := space.Param(p)
		fmt.Printf("  %-24s = %s\n", p, param.FormatRaw(res.Best.Raw(p)))
	}
	fmt.Println("\nEverything except the JSON space and the benchmark function is")
	fmt.Println("the same ROBOTune pipeline used for Spark: LHS sampling, RF")
	fmt.Println("selection, memoization, and the GP-Hedge BO engine.")
}
