// Ask/tell: drive ROBOTune without handing it an Objective. The
// tuner proposes configurations; your code — a real cluster submitter,
// a lab testbed, anything that can run a Spark job and time it —
// evaluates them however it likes and tells the tuner what happened.
// Nothing in the loop below knows about the simulator's Evaluator
// interface: the measurements are hand-built EvalRecords.
//
//	go run ./examples/asktell
package main

import (
	"fmt"
	"log"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/sparksim"
)

func main() {
	space := conf.SparkSpace()
	tuner := core.New(nil, core.Options{
		// Reduced model sizes so the example runs in seconds.
		GenericSamples: 40,
		TuningSamples:  10,
	})

	// The external form: no Objective anywhere. The workload/dataset
	// names key ROBOTune's memoization, exactly as in session mode.
	budget := 30
	stepper := tuner.Stepper(space, budget, 7, "TeraSort", "D1")

	// Our stand-in cluster: the simulator, consulted directly. The
	// tuner never sees it — swap in spark-submit, an ssh command, or
	// an RPC to a benchmark harness.
	cluster := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.TeraSort(50), 7, 480)
	runs, cost := 0, 0.0

	for !stepper.Done() {
		// Ask for whatever the tuner can usefully propose right now:
		// one probe at a time early on, whole LHS waves during
		// parameter selection.
		proposals := stepper.Propose(0)
		if len(proposals) == 0 {
			break
		}
		for _, p := range proposals {
			// p.Cap is the tuner's kill threshold for this run (0 = no
			// cap): pass it to your cluster's timeout machinery so bad
			// configurations die cheaply.
			rec := cluster.EvaluateWithCap(p.Config, p.Cap)
			runs++
			cost += rec.Raw

			// Tell the tuner. Only four fields matter to it: the
			// configuration, the measured Seconds, the consumed Raw
			// seconds, and whether the run Completed. Build them from
			// your own measurements in a real deployment.
			stepper.Observe(p.Config, sparksim.EvalRecord{
				Config:    p.Config,
				Seconds:   rec.Seconds,
				Raw:       rec.Raw,
				Completed: rec.Completed,
			})
		}
	}

	// Result seals the run (memoizing the selection for the next
	// dataset of this workload) and reports the best configuration.
	res := stepper.Result()
	if !res.Found {
		log.Fatal("no completing configuration found")
	}
	fmt.Printf("best time over %d runs (%.0f s of cluster time): %.1f s\n",
		runs, cost, res.BestSeconds)
	fmt.Printf("selected parameters: %v\n", res.SelectedParams)
	fmt.Printf("executor cores      = %d\n", res.Best.Int("spark.executor.cores"))
	fmt.Printf("executor memory     = %d MB\n", res.Best.Int("spark.executor.memory"))
	fmt.Printf("executor instances  = %d\n", res.Best.Int("spark.executor.instances"))
}
