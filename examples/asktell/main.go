// Ask/tell: drive ROBOTune without handing it an Objective. The
// tuner proposes configurations; your code — a real cluster submitter,
// a lab testbed, anything that can run a Spark job and time it —
// evaluates them however it likes and tells the tuner what happened.
// Nothing in the loop below knows about the simulator's Evaluator
// interface: the measurements are hand-built EvalRecords.
//
//	go run ./examples/asktell
//
// With -server, the same loop runs against a live robotuned daemon
// instead of an in-process stepper: the tuner lives in the server,
// every observation is journaled there, and this process is just the
// cluster-side driver. Start one with
//
//	go run ./cmd/robotuned -addr 127.0.0.1:7077 -journal-dir /tmp/robotuned
//	go run ./examples/asktell -server http://127.0.0.1:7077
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"

	"repro/client"
	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/core"

	// Register the built-in backends with the registry.
	_ "repro/internal/backend/backends"
)

func main() {
	serverURL := flag.String("server", "", "robotuned base URL (empty = drive an in-process stepper)")
	flag.Parse()

	space := conf.SparkSpace()
	// Our stand-in cluster: the Spark backend's evaluator, consulted
	// directly. The tuner never sees it — swap in spark-submit, an ssh
	// command, or an RPC to a benchmark harness.
	b, err := backend.Lookup("spark")
	if err != nil {
		log.Fatal(err)
	}
	w, err := b.Workload("TeraSort", 0)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := b.NewEvaluator(w, 7, 480, backend.FaultPlan{})
	if err != nil {
		log.Fatal(err)
	}
	budget := 30

	if *serverURL != "" {
		runRemote(*serverURL, space, cluster, budget)
		return
	}

	tuner := core.New(nil, core.Options{
		// Reduced model sizes so the example runs in seconds.
		GenericSamples: 40,
		TuningSamples:  10,
	})

	// The external form: no Objective anywhere. The workload/dataset
	// names key ROBOTune's memoization, exactly as in session mode.
	stepper := tuner.Stepper(space, budget, 7, "TeraSort", "D1")
	runs, cost := 0, 0.0

	for !stepper.Done() {
		// Ask for whatever the tuner can usefully propose right now:
		// one probe at a time early on, whole LHS waves during
		// parameter selection.
		proposals := stepper.Propose(0)
		if len(proposals) == 0 {
			break
		}
		for _, p := range proposals {
			// p.Cap is the tuner's kill threshold for this run (0 = no
			// cap): pass it to your cluster's timeout machinery so bad
			// configurations die cheaply.
			rec := cluster.EvaluateSpec(p.Config, backend.EvalSpec{Cap: p.Cap})
			runs++
			cost += rec.Raw

			// Tell the tuner. Only four fields matter to it: the
			// configuration, the measured Seconds, the consumed Raw
			// seconds, and whether the run Completed. Build them from
			// your own measurements in a real deployment.
			stepper.Observe(p.Config, backend.EvalRecord{
				Config:    p.Config,
				Seconds:   rec.Seconds,
				Raw:       rec.Raw,
				Completed: rec.Completed,
			})
		}
	}

	// Result seals the run (memoizing the selection for the next
	// dataset of this workload) and reports the best configuration.
	res := stepper.Result()
	if !res.Found {
		log.Fatal("no completing configuration found")
	}
	fmt.Printf("best time over %d runs (%.0f s of cluster time): %.1f s\n",
		runs, cost, res.BestSeconds)
	fmt.Printf("selected parameters: %v\n", res.SelectedParams)
	fmt.Printf("executor cores      = %d\n", res.Best.Int("spark.executor.cores"))
	fmt.Printf("executor memory     = %d MB\n", res.Best.Int("spark.executor.memory"))
	fmt.Printf("executor instances  = %d\n", res.Best.Int("spark.executor.instances"))
}

// runRemote is the same driver loop over the wire: the server owns the
// tuner and the journal, we own the cluster.
func runRemote(baseURL string, space *conf.Space, cluster backend.Evaluator, budget int) {
	cl := client.New(baseURL)
	sess, err := cl.Create(client.SessionSpec{
		Tuner:    "robotune",
		Space:    json.RawMessage(`"spark"`),
		Budget:   budget,
		Seed:     7,
		Workload: "TeraSort",
		Dataset:  "D1",
		Options:  client.SpecOptions{GenericSamples: 40, TuningSamples: 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %s on %s\n", sess.ID, baseURL)
	runs, cost := 0, 0.0

	for {
		proposals, done, err := sess.Propose(0)
		if err != nil {
			log.Fatal(err)
		}
		// done can ride along with a final batch; drain the proposals
		// first and stop only on an empty response.
		if len(proposals) == 0 {
			if !done {
				log.Fatal("tuner is waiting on observations we never made")
			}
			break
		}
		for _, p := range proposals {
			// Proposals arrive as name → raw-value maps; the space turns
			// them back into typed configurations for the cluster.
			cfg, err := space.FromRaw(p.Config)
			if err != nil {
				log.Fatal(err)
			}
			rec := cluster.EvaluateSpec(cfg, backend.EvalSpec{Cap: p.Cap})
			runs++
			cost += rec.Raw
			if _, err := sess.Observe(client.Observation{
				Config:    p.Config,
				Seconds:   rec.Seconds,
				Raw:       rec.Raw,
				Completed: rec.Completed,
			}); err != nil {
				log.Fatal(err)
			}
		}
	}

	res, err := sess.Finish()
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		log.Fatal("no completing configuration found")
	}
	best, err := space.FromRaw(res.Best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best time over %d runs (%.0f s of cluster time): %.1f s\n",
		runs, cost, res.BestSeconds)
	fmt.Printf("selected parameters: %v\n", res.SelectedParams)
	fmt.Printf("executor cores      = %d\n", best.Int("spark.executor.cores"))
	fmt.Printf("executor memory     = %d MB\n", best.Int("spark.executor.memory"))
	fmt.Printf("executor instances  = %d\n", best.Int("spark.executor.instances"))
}
