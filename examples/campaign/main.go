// Campaign: ROBOTune as a long-lived tuning service over a queue of
// recurring workloads (§2.2: "most data analytics workloads recur in
// a cluster"). One tuner instance accumulates the selection cache and
// memoization buffer, so every repeat of a workload family skips the
// one-time selection cost and warm-starts from prior best configs.
//
//	go run ./examples/campaign
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sparksim"
)

func main() {
	campaign := &core.Campaign{
		Tuner:   core.New(nil, core.Options{}),
		Cluster: sparksim.PaperCluster(),
		Budget:  60,
	}

	// A day's worth of recurring jobs: graph analytics in the
	// morning, ML training mid-day, nightly sorts — dataset sizes
	// drifting between arrivals.
	queue := []sparksim.Workload{
		sparksim.PageRank(5),
		sparksim.KMeans(200),
		sparksim.PageRank(7.5),
		sparksim.TeraSort(20),
		sparksim.KMeans(300),
		sparksim.PageRank(10),
		sparksim.TeraSort(30),
	}

	res := campaign.Run(queue, 2026)
	fmt.Print(res.Render())

	fmt.Println("\nSelection ran once per workload family (three MISSes); every")
	fmt.Println("repeat reused the cached parameters and the memoized configs.")
	fmt.Printf("Amortization: %.0f s of one-time selection across %d sessions.\n",
		res.TotalSelectionCost(), len(res.Sessions))
}
