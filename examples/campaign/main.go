// Campaign: ROBOTune as a long-lived tuning service over a queue of
// recurring workloads (§2.2: "most data analytics workloads recur in
// a cluster"). One tuner instance accumulates the selection cache and
// memoization buffer, so every repeat of a workload family skips the
// one-time selection cost and warm-starts from prior best configs.
//
//	go run ./examples/campaign
package main

import (
	"fmt"
	"log"

	"repro/internal/backend"
	"repro/internal/core"

	// Register the built-in backends with the registry.
	_ "repro/internal/backend/backends"
)

func main() {
	b, err := backend.Lookup("spark")
	if err != nil {
		log.Fatal(err)
	}
	campaign := &core.Campaign{
		Tuner:   core.New(nil, core.Options{}),
		Backend: b,
		Budget:  60,
	}

	// A day's worth of recurring jobs: graph analytics in the
	// morning, ML training mid-day, nightly sorts — dataset sizes
	// drifting between arrivals (D1 < D2 < D3 in Table 1's scale).
	wl := func(name string, dataset int) backend.Workload {
		w, err := b.Workload(name, dataset)
		if err != nil {
			log.Fatal(err)
		}
		return w
	}
	queue := []backend.Workload{
		wl("PageRank", 0),
		wl("KMeans", 0),
		wl("PageRank", 1),
		wl("TeraSort", 0),
		wl("KMeans", 1),
		wl("PageRank", 2),
		wl("TeraSort", 1),
	}

	res := campaign.Run(queue, 2026)
	fmt.Print(res.Render())

	fmt.Println("\nSelection ran once per workload family (three MISSes); every")
	fmt.Println("repeat reused the cached parameters and the memoized configs.")
	fmt.Printf("Amortization: %.0f s of one-time selection across %d sessions.\n",
		res.TotalSelectionCost(), len(res.Sessions))
}
