// Cost objective: ROBOTune minimizing resource cost instead of
// wall-clock time (§5.1: "by modifying or replacing the objective
// function, ROBOTune can be easily adapted for optimizing other
// metrics"). The same tuner, pointed at a priced objective, trades a
// little latency for a much smaller cluster footprint.
//
//	go run ./examples/costobjective
package main

import (
	"fmt"
	"log"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/sparksim"
)

func main() {
	space := conf.SparkSpace()
	cluster := sparksim.PaperCluster()
	workload := sparksim.LogisticRegression(200)

	// Baseline: minimize execution time.
	evTime := sparksim.NewEvaluator(cluster, workload, 5, 480)
	rtTime := core.New(nil, core.Options{})
	fast := rtTime.Tune(evTime, space, 80, 5)
	if !fast.Found {
		log.Fatal("time-objective tuning found nothing")
	}

	// Same tuner, priced objective: seconds x (cores + 0.1 x GB).
	evCostBase := sparksim.NewEvaluator(cluster, workload, 5, 480)
	evCost := sparksim.NewResourceCostEvaluator(evCostBase, 0.1)
	rtCost := core.New(nil, core.Options{})
	cheap := rtCost.Tune(evCost, space, 80, 5)
	if !cheap.Found {
		log.Fatal("cost-objective tuning found nothing")
	}

	report := func(label string, c conf.Config) {
		seconds := evTime.Measure(c, 5, 99)
		cost := evCost.MeasureCost(c, 5, 99)
		ex, _ := sparksim.PackExecutors(cluster, c)
		fmt.Printf("%-16s %8.1f s %12.0f core·s %6d cores  (%d executors x %d cores, %s heap)\n",
			label, seconds, cost, ex.Count*ex.CoresEach,
			ex.Count, ex.CoresEach, fmtMB(c.Int(conf.ExecutorMemory)))
	}
	fmt.Printf("workload: %s\n\n", workload.ID())
	fmt.Printf("%-16s %10s %14s %12s\n", "objective", "time", "priced cost", "footprint")
	report("minimize time", fast.Best)
	report("minimize cost", cheap.Best)

	fmt.Println("\nThe cost-optimized configuration accepts a longer runtime in")
	fmt.Println("exchange for a much smaller slice of the cluster — the right")
	fmt.Println("trade when the cluster is shared or billed per core-hour.")
}

func fmtMB(mb int64) string {
	if mb >= 1024 {
		return fmt.Sprintf("%.0fGB", float64(mb)/1024)
	}
	return fmt.Sprintf("%dMB", mb)
}
