// Memoization: tune the same workload family across three growing
// input datasets, demonstrating the §3.2 machinery — the parameter
// selection cache (selection runs once) and the configuration
// memoization buffer (later sessions warm-start from the best recent
// configurations). This is the workflow behind Figure 6.
//
//	go run ./examples/memoization
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/sparksim"
)

func main() {
	// Persist tuning knowledge like a long-lived service would.
	dir, err := os.MkdirTemp("", "robotune-memo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	statePath := filepath.Join(dir, "memo.json")

	space := conf.SparkSpace()
	cluster := sparksim.PaperCluster()
	datasets := []sparksim.Workload{
		sparksim.PageRank(5),   // D1: 5M pages
		sparksim.PageRank(7.5), // D2: 7.5M pages
		sparksim.PageRank(10),  // D3: 10M pages
	}

	for i, w := range datasets {
		// Each session reloads the store: knowledge survives process
		// restarts through the JSON file.
		store, err := memo.Load(statePath)
		if err != nil {
			log.Fatal(err)
		}
		tuner := core.New(store, core.Options{})
		ev := sparksim.NewEvaluator(cluster, w, uint64(100+i), 480)
		res := tuner.Tune(ev, space, 100, uint64(100+i))
		if !res.Found {
			log.Fatalf("%s: nothing found", w.ID())
		}
		if err := store.Save(statePath); err != nil {
			log.Fatal(err)
		}

		kind := "cache MISS → ran parameter selection"
		if res.SelectionEvals == 0 {
			kind = "cache HIT → selection skipped"
		}
		fmt.Printf("session %d: %-22s %s\n", i+1, w.Dataset, kind)
		fmt.Printf("  best %.1f s after %d evaluations (search cost %.0f s)\n",
			res.BestSeconds, res.Evals, res.SearchCost)
		fmt.Printf("  first observation within 10%% of final best at iteration %d\n",
			firstWithin(res.Trace, 0.10))
	}

	fmt.Println("\nMemoized sessions (2 and 3) skip the one-time selection cost and")
	fmt.Println("warm-start from the previous sessions' best configurations; once")
	fmt.Println("the buffer holds configurations from nearby dataset sizes, near-")
	fmt.Println("optimal configurations appear within the first few iterations.")
}

// firstWithin returns the 1-based iteration whose running minimum is
// within frac of the trace's final minimum.
func firstWithin(trace []float64, frac float64) int {
	best := math.Inf(1)
	for _, v := range trace {
		if v < best {
			best = v
		}
	}
	for i, v := range trace {
		if v <= best*(1+frac) {
			return i + 1
		}
	}
	return len(trace)
}
