// Custom workload: define your own stage plan for the Spark
// simulator and tune it. This mirrors onboarding a new application
// onto ROBOTune — nothing in the tuner is specific to the five paper
// workloads.
//
// The example models a two-pass log-analytics job: parse and filter a
// large input, shuffle a session-key aggregation, cache the sessions,
// then run two analytical passes over the cached sessions.
//
// Only the workload definition names the simulator: the tuning itself
// runs through the backend seam (backend.Evaluator + optional
// capability probes), exactly as it would for any other registered
// backend.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/sparksim"
	"repro/internal/tuners"
)

func sessionAnalytics(gbInput float64) sparksim.Workload {
	dataMB := gbInput * 1024
	sessionsMB := dataMB * 0.35 // sessionization compacts the input
	return sparksim.Workload{
		Name:    "SessionAnalytics",
		Dataset: fmt.Sprintf("%gGB logs", gbInput),
		Stages: []sparksim.Stage{
			{
				Name:         "parse-filter",
				Source:       sparksim.FromHDFS,
				InputMB:      dataMB,
				CostFactor:   1.3, // regex-heavy parsing
				ExpandFactor: 2.2,
				MemHungry:    0.05,
				SpillFrac:    0.1,
				ShuffleOutMB: sessionsMB,
				Skew:         0.3,
			},
			{
				Name:              "sessionize",
				Source:            sparksim.FromShuffle,
				InputMB:           sessionsMB,
				CostFactor:        0.8,
				ExpandFactor:      2.8,
				MemHungry:         0.3, // per-key session windows
				SpillFrac:         0.6,
				CacheOutMB:        sessionsMB * 2.8,
				CacheOutKey:       "sessions",
				CacheDiskFallback: true,
				Skew:              0.5, // hot keys
			},
			{
				Name:         "funnel-pass",
				Source:       sparksim.FromCache,
				CacheKey:     "sessions",
				InputMB:      sessionsMB,
				CostFactor:   1.1,
				ExpandFactor: 2.8,
				MemHungry:    0.1,
				SpillFrac:    0.3,
				ShuffleOutMB: 64,
				Skew:         0.2,
			},
			{
				Name:         "cohort-pass",
				Source:       sparksim.FromCache,
				CacheKey:     "sessions",
				InputMB:      sessionsMB,
				CostFactor:   1.6,
				ExpandFactor: 2.8,
				MemHungry:    0.1,
				SpillFrac:    0.3,
				ShuffleOutMB: 32,
				Skew:         0.2,
			},
		},
	}
}

// measure estimates the final quality of a tuned configuration via
// the backend's optional Measure capability. Generic over backends:
// it only sees the seam interfaces.
func measure(ev backend.Evaluator, res tuners.Result, capSeconds float64) float64 {
	if !res.Found {
		return capSeconds
	}
	m, ok := ev.(backend.Measurer)
	if !ok {
		return capSeconds
	}
	return m.Measure(res.Best, 5, 99)
}

func main() {
	w := sessionAnalytics(24)
	bk := sparksim.Backend{} // zero value = the paper's cluster layout
	space := bk.Space()

	// The custom Workload value plugs straight into the backend's
	// evaluator factory — from here on everything is seam-typed.
	newEval := func() backend.Evaluator {
		ev, err := bk.NewEvaluator(w, 7, bk.DefaultCap(), backend.FaultPlan{})
		if err != nil {
			log.Fatal(err)
		}
		return ev
	}

	// Compare ROBOTune against Random Search on the custom workload.
	ev := newEval()
	rt := core.New(nil, core.Options{})
	res := rt.Tune(ev, space, 80, 7)
	if !res.Found {
		log.Fatal("ROBOTune found nothing")
	}
	rtQuality := measure(ev, res, bk.DefaultCap())

	evRS := newEval()
	rs := tuners.RandomSearch{}
	resRS := rs.Tune(evRS, space, 80, 7)
	rsQuality := measure(evRS, resRS, bk.DefaultCap())

	fmt.Printf("workload: %s\n\n", w.ID())
	fmt.Printf("%-14s %12s %14s\n", "tuner", "best (s)", "search cost (s)")
	fmt.Printf("%-14s %12.1f %14.0f\n", "ROBOTune", rtQuality, res.SearchCost)
	fmt.Printf("%-14s %12.1f %14.0f\n", "RandomSearch", rsQuality, resRS.SearchCost)

	fmt.Printf("\nROBOTune's selected parameters for this workload:\n")
	for _, p := range res.SelectedParams {
		param, _ := space.Param(p)
		fmt.Printf("  %-44s = %s\n", p, param.FormatRaw(res.Best.Raw(p)))
	}
}
