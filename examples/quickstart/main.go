// Quickstart: tune one Spark workload with ROBOTune on the simulated
// cluster and print what it found.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/sparksim"
)

func main() {
	// The black box we optimize: a KMeans job over 200M points on the
	// paper's 5-worker cluster, with the paper's 480 s per-run limit.
	workload := sparksim.KMeans(200)
	evaluator := sparksim.NewEvaluator(sparksim.PaperCluster(), workload, 42, 480)

	// ROBOTune with the paper's settings: 100 LHS samples for
	// Random-Forest parameter selection, 20 BO training samples,
	// GP-Hedge portfolio of PI/EI/LCB.
	tuner := core.New(nil, core.Options{})

	space := conf.SparkSpace() // the 44-parameter Spark 2.4 space
	result := tuner.Tune(evaluator, space, 100, 42)
	if !result.Found {
		log.Fatal("no completing configuration found")
	}

	fmt.Printf("workload              : %s\n", workload.ID())
	fmt.Printf("best execution time   : %.1f s\n", result.BestSeconds)
	fmt.Printf("default execution time: %.1f s (capped at the 480 s limit)\n",
		evaluator.Measure(space.Default(), 3, 7))
	fmt.Printf("selected parameters   : %d of %d\n",
		len(result.SelectedParams), space.Dim())
	for _, p := range result.SelectedParams {
		param, _ := space.Param(p)
		fmt.Printf("  %-44s = %s\n", p, param.FormatRaw(result.Best.Raw(p)))
	}
	fmt.Printf("search cost           : %.0f s over %d evaluations\n",
		result.SearchCost, result.Evals)
	fmt.Printf("selection (one-time)  : %.0f s over %d evaluations\n",
		result.SelectionCost, result.SelectionEvals)
}
